"""Math libraries: BLAS/LAPACK providers, sparse solvers, FFTs, and friends."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, MakefilePackage, Package


class Openblas(MakefilePackage):
    """Optimized BLAS/LAPACK based on GotoBLAS2."""

    version("0.3.23")
    version("0.3.21")
    version("0.3.20")
    version("0.3.10")

    provides("blas")
    provides("lapack")
    provides("lapack@3.9.1:", when="@0.3.15:")

    variant(
        "threads",
        default="none",
        values=("none", "openmp", "pthreads"),
        description="Multithreading support",
    )
    variant("fortran", default=True, description="Build with a Fortran compiler")
    variant("ilp64", default=False, description="64-bit integer interface")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("perl", type="build")


class NetlibLapack(CMakePackage):
    """Reference LAPACK and BLAS from netlib."""

    name = "netlib-lapack"

    version("3.11.0")
    version("3.10.1")
    version("3.9.1")

    provides("blas")
    provides("lapack")

    variant("shared", default=True, description="Build shared libraries")
    variant("external-blas", default=False, description="Link an external BLAS")
    variant("lapacke", default=True, description="Build the LAPACKE C interface")
    depends_on("blas", when="+external-blas")


class NetlibScalapack(CMakePackage):
    """Reference ScaLAPACK."""

    name = "netlib-scalapack"

    version("2.2.0")
    version("2.1.0")

    provides("scalapack")

    variant("shared", default=True, description="Build shared libraries")
    variant("pic", default=True, description="Position independent code")
    depends_on("mpi")
    depends_on("blas")
    depends_on("lapack")


class Fftw(AutotoolsPackage):
    """Fastest Fourier Transform in the West."""

    version("3.3.10")
    version("3.3.9")
    version("3.3.8")

    provides("fftw-api")
    provides("fftw-api@3", when="@3:")

    variant("mpi", default=True, description="Build MPI-enabled transforms")
    variant("openmp", default=False, description="Enable OpenMP support")
    variant(
        "precision",
        default="double",
        values=("float", "double", "long_double"),
        multi=True,
        description="Floating point precisions to build",
    )
    depends_on("mpi", when="+mpi")


class Metis(CMakePackage):
    """Serial graph partitioning and fill-reducing matrix ordering."""

    version("5.1.0")
    version("4.0.3", deprecated=True)

    variant("shared", default=True, description="Build shared libraries")
    variant("int64", default=False, description="64-bit integer indices")
    variant("real64", default=False, description="Double-precision reals")


class Parmetis(CMakePackage):
    """Parallel graph partitioning."""

    version("4.0.3")

    variant("shared", default=True, description="Build shared libraries")
    variant("int64", default=False, description="64-bit integer indices")
    depends_on("mpi")
    depends_on("metis")
    depends_on("metis+int64", when="+int64")


class SuperluDist(CMakePackage):
    """Distributed-memory sparse direct solver."""

    name = "superlu-dist"

    version("8.1.2")
    version("7.2.0")
    version("6.4.0")

    variant("int64", default=False, description="64-bit integer indices")
    variant("openmp", default=False, description="OpenMP parallelism within nodes")
    variant("cuda", default=False, description="CUDA offload")
    depends_on("mpi")
    depends_on("blas")
    depends_on("lapack")
    depends_on("parmetis")
    depends_on("metis")
    depends_on("cuda", when="+cuda")


class ArpackNg(CMakePackage):
    """Large-scale eigenvalue problems (ARPACK successor)."""

    name = "arpack-ng"

    version("3.9.0")
    version("3.8.0")

    variant("mpi", default=True, description="Build parallel PARPACK")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi", when="+mpi")


class Hypre(AutotoolsPackage):
    """Scalable linear solvers and multigrid preconditioners."""

    version("2.28.0")
    version("2.26.0")
    version("2.24.0")
    version("2.20.0")

    variant("mpi", default=True, description="Enable MPI support")
    variant("openmp", default=False, description="Enable OpenMP")
    variant("cuda", default=False, description="CUDA support")
    variant("shared", default=True, description="Build shared libraries")
    variant("int64", default=False, description="64-bit integers")
    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi", when="+mpi")
    depends_on("cuda@10:", when="+cuda")
    conflicts("+cuda", when="+int64", msg="hypre CUDA build requires 32-bit integers")


class Petsc(Package):
    """Portable, Extensible Toolkit for Scientific Computation."""

    version("3.19.1")
    version("3.18.6")
    version("3.17.5")
    version("3.16.6")

    variant("mpi", default=True, description="Use MPI")
    variant("hypre", default=True, description="Interface to hypre")
    variant("superlu-dist", default=True, description="Interface to SuperLU_DIST")
    variant("metis", default=True, description="Interface to METIS/ParMETIS")
    variant("hdf5", default=True, description="HDF5 I/O support")
    variant("fftw", default=False, description="FFTW interface")
    variant("cuda", default=False, description="CUDA support")
    variant("complex", default=False, description="Complex scalars")
    variant("debug", default=False, description="Debug build")

    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi", when="+mpi")
    depends_on("hypre+mpi", when="+hypre+mpi")
    depends_on("superlu-dist", when="+superlu-dist+mpi")
    depends_on("metis", when="+metis")
    depends_on("parmetis", when="+metis+mpi")
    depends_on("hdf5+mpi", when="+hdf5+mpi")
    depends_on("fftw+mpi", when="+fftw+mpi")
    depends_on("cuda", when="+cuda")
    depends_on("python", type="build")
    depends_on("diffutils", type="build")
    conflicts("+hypre", when="+complex", msg="hypre does not support complex scalars")


class Slepc(Package):
    """Scalable eigenvalue computations on top of PETSc."""

    version("3.19.0")
    version("3.18.3")

    variant("arpack", default=True, description="Use ARPACK-NG")
    depends_on("petsc")
    depends_on("petsc@3.19.0:", when="@3.19.0:")
    depends_on("arpack-ng", when="+arpack")
    depends_on("python", type="build")


class Trilinos(CMakePackage):
    """A collection of interoperable scientific libraries from Sandia."""

    version("14.0.0")
    version("13.4.1")
    version("13.0.1")

    variant("mpi", default=True, description="Build with MPI")
    variant("openmp", default=False, description="OpenMP node parallelism")
    variant("cuda", default=False, description="CUDA support via Kokkos")
    variant("shared", default=True, description="Build shared libraries")
    variant("kokkos", default=True, description="Enable the Kokkos packages")
    variant("amesos2", default=True, description="Enable Amesos2 direct solvers")
    variant("belos", default=True, description="Enable Belos iterative solvers")

    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi", when="+mpi")
    depends_on("kokkos", when="+kokkos")
    depends_on("kokkos+cuda", when="+kokkos+cuda")
    depends_on("superlu-dist", when="+amesos2+mpi")
    depends_on("metis")
    depends_on("parmetis", when="+mpi")
    depends_on("boost")
    depends_on("hdf5+mpi", when="+mpi")
    depends_on("netlib-scalapack", when="+mpi")
    conflicts("%gcc@:7", when="@14:", msg="Trilinos 14 requires C++17")


class Sundials(CMakePackage):
    """SUite of Nonlinear and DIfferential/ALgebraic equation Solvers."""

    version("6.5.1")
    version("6.4.1")
    version("5.8.0")

    variant("mpi", default=True, description="Enable MPI vectors")
    variant("openmp", default=False, description="Enable OpenMP vectors")
    variant("cuda", default=False, description="Enable CUDA vectors")
    variant("hypre", default=False, description="Interface to hypre")
    depends_on("mpi", when="+mpi")
    depends_on("hypre+mpi", when="+hypre")
    depends_on("cuda", when="+cuda")
    depends_on("blas")
    depends_on("lapack")


class Ginkgo(CMakePackage):
    """High-performance linear algebra on many-core architectures."""

    version("1.6.0")
    version("1.5.0")

    variant("cuda", default=False, description="CUDA backend")
    variant("rocm", default=False, description="HIP/ROCm backend")
    variant("openmp", default=True, description="OpenMP backend")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("cuda@9.2:", when="+cuda")
    depends_on("hip", when="+rocm")
    depends_on("rocblas", when="+rocm")
    depends_on("rocsparse", when="+rocm")


class Magma(CMakePackage):
    """Dense linear algebra for heterogeneous (GPU) architectures."""

    version("2.7.1")
    version("2.6.2")

    variant("cuda", default=True, description="CUDA backend")
    variant("rocm", default=False, description="ROCm backend")
    variant("fortran", default=True, description="Fortran interfaces")
    depends_on("blas")
    depends_on("lapack")
    depends_on("cuda@10:", when="+cuda")
    depends_on("hip", when="+rocm")
    depends_on("rocblas", when="+rocm")
    conflicts("+cuda", when="+rocm", msg="pick one GPU backend")


class Blaspp(CMakePackage):
    """C++ API for BLAS (part of SLATE)."""

    version("2023.01.00")
    version("2022.07.00")

    variant("cuda", default=False, description="CUDA support")
    variant("openmp", default=True, description="OpenMP support")
    depends_on("blas")
    depends_on("cuda", when="+cuda")


class Lapackpp(CMakePackage):
    """C++ API for LAPACK (part of SLATE)."""

    version("2023.01.00")
    version("2022.07.00")
    depends_on("blaspp")
    depends_on("lapack")


class Slate(CMakePackage):
    """Distributed dense linear algebra targeting exascale (ECP)."""

    version("2023.06.00")
    version("2022.07.00")

    variant("mpi", default=True, description="MPI support")
    variant("cuda", default=False, description="CUDA support")
    variant("openmp", default=True, description="OpenMP support")
    depends_on("blaspp")
    depends_on("lapackpp")
    depends_on("mpi", when="+mpi")
    depends_on("netlib-scalapack", when="+mpi")
    depends_on("cuda", when="+cuda")


class Heffte(CMakePackage):
    """Highly Efficient FFT for Exascale."""

    version("2.3.0")
    version("2.2.0")

    variant("fftw", default=True, description="Use FFTW backend")
    variant("cuda", default=False, description="Use cuFFT backend")
    depends_on("mpi")
    depends_on("fftw-api", when="+fftw")
    depends_on("cuda", when="+cuda")


class Tasmanian(CMakePackage):
    """Toolkit for Adaptive Stochastic Modeling and Non-Intrusive ApproximatioN."""

    version("7.9")
    version("7.7")

    variant("mpi", default=True, description="MPI support")
    variant("blas", default=True, description="BLAS acceleration")
    variant("python", default=False, description="Python bindings")
    depends_on("mpi", when="+mpi")
    depends_on("blas", when="+blas")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")


class Strumpack(CMakePackage):
    """Structured matrix solvers and preconditioners."""

    version("7.1.1")
    version("6.3.1")

    variant("mpi", default=True, description="MPI support")
    variant("openmp", default=True, description="OpenMP support")
    variant("butterflypack", default=True, description="Use ButterflyPACK")
    variant("zfp", default=True, description="ZFP compression of frontal matrices")
    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi", when="+mpi")
    depends_on("netlib-scalapack", when="+mpi")
    depends_on("metis")
    depends_on("parmetis", when="+mpi")
    depends_on("butterflypack", when="+butterflypack+mpi")
    depends_on("zfp", when="+zfp")


class Butterflypack(CMakePackage):
    """Butterfly-based hierarchical matrix package."""

    version("2.4.0")
    version("2.2.2")
    depends_on("mpi")
    depends_on("blas")
    depends_on("lapack")
    depends_on("netlib-scalapack")


class Zfp(CMakePackage):
    """Compressed numerical arrays with bounded error."""

    version("1.0.0")
    version("0.5.5")

    variant("shared", default=True, description="Build shared libraries")
    variant("cuda", default=False, description="CUDA support")
    depends_on("cuda", when="+cuda")


class Sz(CMakePackage):
    """Error-bounded lossy compressor for scientific data."""

    version("2.1.12.5")
    version("2.1.12")

    variant("hdf5", default=False, description="HDF5 filter plugin")
    variant("python", default=False, description="Python bindings")
    depends_on("zlib")
    depends_on("zstd")
    depends_on("hdf5", when="+hdf5")
    depends_on("python", when="+python")


class Gsl(AutotoolsPackage):
    """GNU Scientific Library."""

    version("2.7.1")
    version("2.6")
    variant("external-cblas", default=False, description="Use an external CBLAS")
    depends_on("blas", when="+external-cblas")


class Eigen(CMakePackage):
    """C++ template library for linear algebra."""

    version("3.4.0")
    version("3.3.9")


class SuiteSparse(MakefilePackage):
    """Sparse matrix algorithms suite."""

    name = "suite-sparse"

    version("5.13.0")
    version("5.10.1")
    depends_on("blas")
    depends_on("lapack")
    depends_on("metis")
    depends_on("gmp")
    depends_on("mpfr")
