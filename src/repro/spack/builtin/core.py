"""Core system libraries and build tools.

These are the low-level packages almost everything else depends on.  Keeping
the metadata realistic matters: the build-tool tangle (cmake -> curl ->
openssl -> perl -> gdbm -> ...) is what makes "possible dependency" counts so
much larger than actual dependency counts in the paper's Figure 7 discussion.
"""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, MakefilePackage, Package


class Zlib(Package):
    """The ubiquitous compression library."""

    version("1.2.13")
    version("1.2.12")
    version("1.2.11")
    version("1.2.8")

    variant("pic", default=True, description="Build position-independent code")
    variant("shared", default=True, description="Build shared libraries")


class Bzip2(Package):
    """High-quality block-sorting file compressor."""

    version("1.0.8")
    version("1.0.7")
    version("1.0.6", deprecated=True)

    variant("pic", default=True, description="Build position-independent code")
    variant("shared", default=True, description="Build shared libraries")
    depends_on("diffutils", type="build")


class Xz(AutotoolsPackage):
    """LZMA compression utilities."""

    version("5.4.1")
    version("5.2.7")
    version("5.2.5")

    variant("pic", default=False, description="Build position-independent code")


class Zstd(MakefilePackage):
    """Fast real-time compression algorithm."""

    version("1.5.5")
    version("1.5.2")
    version("1.4.9")

    variant("programs", default=False, description="Build executables")
    depends_on("zlib", when="+programs")
    depends_on("xz", when="+programs")


class Lz4(MakefilePackage):
    """Extremely fast compression algorithm."""

    version("1.9.4")
    version("1.9.3")


class Snappy(CMakePackage):
    """Fast compressor/decompressor from Google."""

    version("1.1.10")
    version("1.1.9")
    variant("shared", default=True, description="Build shared libraries")


class CBlosc(CMakePackage):
    """A blocking, shuffling and lossless compression library."""

    version("1.21.4")
    version("1.21.2")
    depends_on("lz4")
    depends_on("snappy")
    depends_on("zlib")
    depends_on("zstd")


class Pkgconf(AutotoolsPackage):
    """Package compiler and linker metadata toolkit."""

    version("1.9.5")
    version("1.8.0")
    version("1.7.4")
    provides("pkgconfig")


class Ncurses(AutotoolsPackage):
    """Text-based user interface library."""

    version("6.4")
    version("6.3")
    version("6.2")

    variant("termlib", default=True, description="Build tinfo as a separate library")
    variant("symlinks", default=False, description="Use symlinks for curses")
    depends_on("pkgconfig", type="build")


class Readline(AutotoolsPackage):
    """Command-line editing library."""

    version("8.2")
    version("8.1.2")
    depends_on("ncurses")


class Gdbm(AutotoolsPackage):
    """GNU database routines."""

    version("1.23")
    version("1.21")
    depends_on("readline")


class Sqlite(AutotoolsPackage):
    """Self-contained SQL database engine."""

    version("3.42.0")
    version("3.40.1")
    version("3.39.4")

    variant("functions", default=False, description="Enable loadable extensions")
    variant("fts", default=True, description="Full-text search support")
    depends_on("readline")
    depends_on("zlib")


class Openssl(Package):
    """Cryptography and SSL/TLS toolkit."""

    version("3.1.0")
    version("1.1.1t")
    version("1.1.1k")
    version("1.0.2u", deprecated=True)

    variant("shared", default=True, description="Build shared libraries")
    variant("docs", default=False, description="Install documentation")
    depends_on("zlib")
    depends_on("perl", type="build")


class Curl(AutotoolsPackage):
    """Command line tool and library for transferring data with URLs."""

    version("8.1.2")
    version("7.85.0")
    version("7.76.1")

    variant("tls", default="openssl", values=("openssl", "mbedtls"), description="TLS provider")
    variant("nghttp2", default=False, description="HTTP/2 support")
    variant("libssh2", default=False, description="scp/sftp support")
    depends_on("openssl", when="tls=openssl")
    depends_on("mbedtls", when="tls=mbedtls")
    depends_on("libssh2", when="+libssh2")
    depends_on("zlib")
    depends_on("pkgconfig", type="build")


class Mbedtls(MakefilePackage):
    """Lightweight TLS library."""

    version("3.3.0")
    version("2.28.2")
    variant("pic", default=True, description="Position independent code")


class Libssh2(AutotoolsPackage):
    """Client-side C library implementing the SSH2 protocol."""

    version("1.10.0")
    version("1.9.0")
    depends_on("openssl")
    depends_on("zlib")


class Libiconv(AutotoolsPackage):
    """GNU character set conversion library."""

    version("1.17")
    version("1.16")


class Libxml2(AutotoolsPackage):
    """XML parser library."""

    version("2.10.3")
    version("2.9.13")
    version("2.9.12")

    variant("python", default=False, description="Build Python bindings")
    depends_on("libiconv")
    depends_on("zlib")
    depends_on("xz")
    depends_on("python", when="+python")
    depends_on("pkgconfig", type="build")


class Expat(AutotoolsPackage):
    """Stream-oriented XML parser library."""

    version("2.5.0")
    version("2.4.8")
    depends_on("libbsd")


class Libbsd(AutotoolsPackage):
    """Utility functions from BSD systems."""

    version("0.11.7")
    version("0.11.6")
    depends_on("libmd")


class Libmd(AutotoolsPackage):
    """Message digest functions from BSD systems."""

    version("1.0.4")
    version("1.0.3")


class Libffi(AutotoolsPackage):
    """Portable foreign function interface library."""

    version("3.4.4")
    version("3.4.2")
    version("3.3")


class Gettext(AutotoolsPackage):
    """GNU internationalization utilities."""

    version("0.21.1")
    version("0.21")

    variant("curses", default=True, description="Use ncurses")
    variant("bzip2", default=True, description="Support bzip2 archives")
    depends_on("ncurses", when="+curses")
    depends_on("bzip2", when="+bzip2")
    depends_on("libiconv")
    depends_on("libxml2")
    depends_on("tar", type="build")


class Tar(AutotoolsPackage):
    """GNU tape archiver."""

    version("1.34")
    version("1.32")
    depends_on("libiconv")


class Gmake(AutotoolsPackage):
    """GNU make."""

    version("4.4.1")
    version("4.3")
    variant("guile", default=False, description="Embed GNU Guile")


class Gmp(AutotoolsPackage):
    """GNU multiple precision arithmetic library."""

    version("6.2.1")
    version("6.1.2")
    depends_on("m4", type="build")


class Mpfr(AutotoolsPackage):
    """Multiple-precision floating-point computations with correct rounding."""

    version("4.2.0")
    version("4.1.0")
    depends_on("gmp@6.1.0:")


class M4(AutotoolsPackage):
    """GNU macro processor."""

    version("1.4.19")
    version("1.4.18")
    variant("sigsegv", default=True, description="Use libsigsegv")
    depends_on("libsigsegv", when="+sigsegv")
    depends_on("diffutils", type="build")


class Libsigsegv(AutotoolsPackage):
    """Page fault detection library."""

    version("2.14")
    version("2.13")


class Diffutils(AutotoolsPackage):
    """GNU diff utilities."""

    version("3.9")
    version("3.8")
    depends_on("libiconv")


class Findutils(AutotoolsPackage):
    """GNU find utilities."""

    version("4.9.0")
    version("4.8.0")


class Autoconf(AutotoolsPackage):
    """GNU Autoconf."""

    version("2.71")
    version("2.69")
    depends_on("m4@1.4.8:", type="build")
    depends_on("perl", type="build")


class Automake(AutotoolsPackage):
    """GNU Automake."""

    version("1.16.5")
    version("1.16.3")
    depends_on("autoconf", type="build")
    depends_on("perl", type="build")


class Libtool(AutotoolsPackage):
    """GNU libtool."""

    version("2.4.7")
    version("2.4.6")
    depends_on("m4@1.4.6:", type="build")
    depends_on("autoconf", type="build")
    depends_on("automake", type="build")


class Perl(Package):
    """Practical Extraction and Report Language."""

    version("5.36.0")
    version("5.34.1")
    version("5.32.1")

    variant("threads", default=True, description="Build with threading support")
    variant("shared", default=True, description="Build a shared libperl")
    depends_on("gdbm")
    depends_on("berkeley-db")
    depends_on("zlib")
    depends_on("bzip2")


class BerkeleyDb(AutotoolsPackage):
    """Oracle Berkeley DB."""

    version("18.1.40")
    version("18.1.32")
    variant("cxx", default=True, description="Build C++ API")


class Bison(AutotoolsPackage):
    """General-purpose parser generator."""

    version("3.8.2")
    version("3.7.6")
    depends_on("m4", type="build")
    depends_on("perl", type="build")
    depends_on("diffutils", type="build")


class Flex(AutotoolsPackage):
    """Fast lexical analyzer generator."""

    version("2.6.4")
    version("2.6.3")
    variant("lex", default=True, description="Provide lex symlink")
    depends_on("bison", type="build")
    depends_on("m4", type="build")
    depends_on("findutils", type="build")


class Cmake(Package):
    """Cross-platform build system generator.

    The build of cmake itself pulls in networking (curl/openssl) — the
    paper's Section VI example of why "minimize builds" must not override the
    defaults of packages that *are* built (cmake without openssl has no
    networking).
    """

    version("3.26.3")
    version("3.24.4")
    version("3.23.3")
    version("3.21.4")
    version("3.21.1")

    variant("ownlibs", default=True, description="Use CMake-provided third-party libraries")
    variant("ncurses", default=True, description="Build the ccmake text UI")
    variant("qt", default=False, description="Build the Qt-based GUI")
    variant("debug_tools", default=False, description="Enable memory-debugging integration")
    depends_on("openssl")
    depends_on("curl", when="~ownlibs")
    depends_on("zlib", when="~ownlibs")
    depends_on("ncurses", when="+ncurses")
    depends_on("valgrind", when="+debug_tools")


class Ninja(Package):
    """Small build system with a focus on speed."""

    version("1.11.1")
    version("1.10.2")
    depends_on("python", type="build")


class Meson(Package):
    """High-productivity build system."""

    version("1.1.0")
    version("0.64.1")
    depends_on("python@3.7:", type=("build", "run"))
    depends_on("ninja", type="run")


class Git(AutotoolsPackage):
    """Distributed version control system."""

    version("2.40.1")
    version("2.39.3")
    version("2.36.3")

    variant("tcltk", default=False, description="Build gitk and git-gui")
    depends_on("curl")
    depends_on("expat")
    depends_on("gettext")
    depends_on("libiconv")
    depends_on("openssl")
    depends_on("pcre2")
    depends_on("zlib")
    depends_on("perl", type=("build", "run"))


class Pcre2(AutotoolsPackage):
    """Perl-compatible regular expressions (revised API)."""

    version("10.42")
    version("10.39")
    variant("jit", default=False, description="Enable JIT support")


class UtilLinuxUuid(AutotoolsPackage):
    """Just the libuuid piece of util-linux."""

    version("2.38.1")
    version("2.37.4")
    depends_on("pkgconfig", type="build")


class Libunwind(AutotoolsPackage):
    """Call-chain determination library."""

    version("1.6.2")
    version("1.5.0")
    variant("xz", default=False, description="Support xz-compressed symbol tables")
    depends_on("xz", when="+xz")


class Boost(Package):
    """Peer-reviewed portable C++ source libraries."""

    version("1.82.0")
    version("1.80.0")
    version("1.79.0")
    version("1.76.0")

    variant("shared", default=True, description="Build shared libraries")
    variant("multithreaded", default=True, description="Build multi-threaded variants")
    variant("python", default=False, description="Build Boost.Python")
    variant("mpi", default=False, description="Build Boost.MPI")
    depends_on("bzip2")
    depends_on("zlib")
    depends_on("zstd")
    depends_on("xz")
    depends_on("python", when="+python")
    depends_on("mpi", when="+mpi")
    conflicts("%intel", when="@1.80.0:", msg="newer Boost is not tested with classic Intel")


class Hwloc(AutotoolsPackage):
    """Portable hardware locality abstraction."""

    version("2.9.1")
    version("2.8.0")
    version("2.7.1")

    variant("libxml2", default=True, description="Use libxml2 for XML topology export")
    variant("pci", default=True, description="PCI device discovery")
    variant("cuda", default=False, description="CUDA device discovery")
    depends_on("libxml2", when="+libxml2")
    depends_on("libpciaccess", when="+pci")
    depends_on("cuda", when="+cuda")
    depends_on("ncurses")
    depends_on("pkgconfig", type="build")


class Libpciaccess(AutotoolsPackage):
    """Generic PCI access library."""

    version("0.17")
    version("0.16")
    depends_on("libtool", type="build")
    depends_on("util-macros", type="build")


class UtilMacros(AutotoolsPackage):
    """X.Org autotools macros."""

    version("1.20.0")
    version("1.19.3")


class Numactl(AutotoolsPackage):
    """NUMA support utilities and library."""

    version("2.0.16")
    version("2.0.14")
    depends_on("autoconf", type="build")
    depends_on("automake", type="build")
    depends_on("libtool", type="build")


class Libevent(AutotoolsPackage):
    """Event notification library."""

    version("2.1.12")
    version("2.1.11")
    variant("openssl", default=True, description="Build with OpenSSL support")
    depends_on("openssl", when="+openssl")


class Libedit(AutotoolsPackage):
    """BSD line-editing library."""

    version("3.1-20210216")
    version("3.1-20191231")
    depends_on("ncurses")


class Libyaml(AutotoolsPackage):
    """YAML parser and emitter in C."""

    version("0.2.5")
    version("0.2.2")


class YamlCpp(CMakePackage):
    """YAML parser and emitter in C++."""

    version("0.7.0")
    version("0.6.3")
    variant("shared", default=True, description="Build shared libraries")


class NlohmannJson(CMakePackage):
    """JSON for modern C++."""

    version("3.11.2")
    version("3.10.5")


class Googletest(CMakePackage):
    """Google's C++ test framework."""

    version("1.13.0")
    version("1.12.1")
    variant("gmock", default=True, description="Build gmock")
    variant("shared", default=True, description="Build shared libraries")


class Valgrind(AutotoolsPackage):
    """Instrumentation framework for dynamic analysis.

    The optional MPI wrappers create a *possible* path back to ``mpi`` from
    the build-tool world (cmake -> valgrind -> mpi), which is exactly the kind
    of circular possible dependency Section VII-B describes.
    """

    version("3.20.0")
    version("3.19.0")

    variant("mpi", default=True, description="Build the MPI wrappers")
    variant("boost", default=False, description="Build Boost-based tools")
    depends_on("mpi", when="+mpi")
    depends_on("boost", when="+boost")
    depends_on("autoconf", type="build")
    depends_on("automake", type="build")
    depends_on("libtool", type="build")
    conflicts("target=aarch64:", when="@:3.19.0", msg="old valgrind lacks complete ARM64 support")


class Swig(AutotoolsPackage):
    """Interface compiler connecting C/C++ with scripting languages."""

    version("4.1.1")
    version("4.0.2")
    depends_on("pcre2")


class Binutils(AutotoolsPackage):
    """GNU binary utilities."""

    version("2.40")
    version("2.38")
    version("2.36.1")

    variant("gold", default=False, description="Build the gold linker")
    variant("ld", default=False, description="Install ld as the default linker")
    variant("plugins", default=True, description="Enable plugin support")
    depends_on("zlib")
    depends_on("gettext")
    depends_on("flex", type="build")
    depends_on("bison", type="build")


class Libelf(AutotoolsPackage):
    """ELF object file access library (legacy)."""

    version("0.8.13")
    version("0.8.12", deprecated=True)


class Elfutils(AutotoolsPackage):
    """Utilities and libraries to handle ELF objects."""

    version("0.189")
    version("0.186")
    variant("bzip2", default=False, description="Support bzip2-compressed sections")
    variant("debuginfod", default=False, description="Enable debuginfod client")
    depends_on("bzip2", when="+bzip2")
    depends_on("curl", when="+debuginfod")
    depends_on("zlib")
    depends_on("xz")
    depends_on("m4", type="build")


class Libdwarf(AutotoolsPackage):
    """DWARF debugging information library."""

    version("0.7.0")
    version("20210528")
    depends_on("libelf")
    depends_on("zlib")


class IntelTbb(CMakePackage):
    """Intel Threading Building Blocks."""

    version("2021.9.0")
    version("2021.6.0")
    version("2020.3")
    variant("shared", default=True, description="Build shared libraries")
    conflicts("target=ppc64le", when="@2021:", msg="oneTBB does not support ppc64le")


class Libmonitor(AutotoolsPackage):
    """Process/thread control callback library used by HPCToolkit."""

    version("2023.03.15")
    version("2021.11.08")


class IntelXed(Package):
    """x86 instruction encoder-decoder."""

    version("2022.10.11")
    version("2021.05.17")
    depends_on("python", type="build")
    conflicts("target=ppc64le", msg="xed is x86-only")
    conflicts("target=aarch64:", msg="xed is x86-only")


class Papi(AutotoolsPackage):
    """Performance Application Programming Interface."""

    version("7.0.1")
    version("6.0.0.1")
    version("5.7.0")

    variant("cuda", default=False, description="Enable CUDA component")
    variant("rocm", default=False, description="Enable ROCm component")
    depends_on("cuda", when="+cuda")
    depends_on("hsa-rocr-dev", when="+rocm")
    depends_on("pkgconfig", type="build")


class Gotcha(CMakePackage):
    """Library for wrapping function calls in shared libraries."""

    version("1.0.4")
    version("1.0.3")
    variant("test", default=False, description="Build tests")
