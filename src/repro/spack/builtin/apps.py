"""Application-level packages and E4S product roots (mfem, amrex, warpx, ...)."""

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import AutotoolsPackage, CMakePackage, MakefilePackage, Package


class Mfem(MakefilePackage):
    """Lightweight, scalable C++ finite element library."""

    version("4.5.2")
    version("4.5.0")
    version("4.4.0")

    variant("mpi", default=True, description="Parallel build with MPI")
    variant("openmp", default=False, description="OpenMP parallelism")
    variant("cuda", default=False, description="CUDA support")
    variant("petsc", default=False, description="PETSc integration")
    variant("sundials", default=False, description="SUNDIALS integration")
    variant("zlib", default=True, description="Compressed data streams")

    depends_on("mpi", when="+mpi")
    depends_on("hypre", when="+mpi")
    depends_on("metis", when="+mpi")
    depends_on("blas")
    depends_on("lapack")
    depends_on("petsc+mpi", when="+petsc+mpi")
    depends_on("sundials+mpi", when="+sundials+mpi")
    depends_on("cuda", when="+cuda")
    depends_on("zlib", when="+zlib")
    conflicts("+petsc", when="~mpi", msg="PETSc integration needs MPI")


class Amrex(CMakePackage):
    """Block-structured adaptive mesh refinement framework."""

    version("23.05")
    version("23.01")
    version("22.11")

    variant("mpi", default=True, description="MPI parallelism")
    variant("openmp", default=False, description="OpenMP parallelism")
    variant("cuda", default=False, description="CUDA support")
    variant("fortran", default=False, description="Fortran interfaces")
    variant("linear_solvers", default=True, description="Build linear solvers")
    variant("hdf5", default=False, description="HDF5 plotfiles")
    depends_on("mpi", when="+mpi")
    depends_on("cuda@11:", when="+cuda")
    depends_on("hdf5+mpi", when="+hdf5+mpi")
    conflicts("%gcc@:7", when="@23:", msg="AMReX requires C++17")


class Warpx(CMakePackage):
    """Advanced electromagnetic particle-in-cell code (ECP app)."""

    version("23.05")
    version("23.01")

    variant("mpi", default=True, description="MPI parallelism")
    variant("openpmd", default=True, description="openPMD I/O")
    variant("dims", default="3", values=("1", "2", "3", "rz"), description="Dimensionality")
    variant("compute", default="omp", values=("omp", "cuda", "hip", "noacc"), description="Compute backend")
    depends_on("amrex")
    depends_on("mpi", when="+mpi")
    depends_on("openpmd-api", when="+openpmd")
    depends_on("cuda", when="compute=cuda")
    depends_on("hip", when="compute=hip")
    depends_on("fftw-api", when="compute=omp")
    depends_on("boost")


class OpenpmdApi(CMakePackage):
    """C++ & Python API for openPMD-standard particle and mesh data."""

    name = "openpmd-api"

    version("0.15.1")
    version("0.14.5")

    variant("mpi", default=True, description="Parallel I/O")
    variant("python", default=False, description="Python bindings")
    depends_on("adios2+mpi", when="+mpi")
    depends_on("adios2", when="~mpi")
    depends_on("hdf5+mpi", when="+mpi")
    depends_on("hdf5", when="~mpi")
    depends_on("mpi", when="+mpi")
    depends_on("nlohmann-json")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")
    depends_on("py-pybind11", when="+python", type="build")


class Ascent(CMakePackage):
    """In-situ visualization and analysis for simulation codes."""

    version("0.9.1")
    version("0.8.0")

    variant("mpi", default=True, description="MPI support")
    variant("vtkh", default=True, description="VTK-h pipelines")
    variant("cuda", default=False, description="CUDA support")
    variant("python", default=False, description="Python filters")
    depends_on("conduit")
    depends_on("mpi", when="+mpi")
    depends_on("vtk-m", when="+vtkh")
    depends_on("cuda", when="+cuda")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")


class VtkM(CMakePackage):
    """Scientific visualization toolkit for many-core architectures."""

    name = "vtk-m"

    version("2.0.0")
    version("1.9.0")

    variant("cuda", default=False, description="CUDA backend")
    variant("openmp", default=True, description="OpenMP backend")
    variant("rendering", default=True, description="Build rendering support")
    depends_on("cuda", when="+cuda")
    conflicts("+cuda", when="%intel", msg="VTK-m CUDA builds need gcc or clang hosts")


class Berkeleygw(MakefilePackage):
    """Many-body perturbation theory GW/BSE code.

    The paper's Section VI-B.3 example: when berkeleygw is built with OpenMP
    and openblas is the chosen lapack provider, openblas must be built with
    ``threads=openmp``.
    """

    version("3.0.1")
    version("2.1")

    variant("openmp", default=True, description="Build with OpenMP")
    variant("scalapack", default=True, description="Use ScaLAPACK")
    variant("hdf5", default=True, description="HDF5 I/O")

    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi")
    depends_on("openblas threads=openmp", when="+openmp ^openblas")
    depends_on("netlib-scalapack", when="+scalapack")
    depends_on("hdf5+fortran+mpi", when="+hdf5")
    depends_on("fftw-api")
    depends_on("perl", type="build")


class Alquimia(CMakePackage):
    """Biogeochemistry API and wrapper library."""

    version("1.0.10")
    version("1.0.9")
    depends_on("mpi")
    depends_on("hdf5+mpi")
    depends_on("petsc+mpi")
    depends_on("pflotran")


class Pflotran(AutotoolsPackage):
    """Massively parallel reactive flow and transport code."""

    version("4.0.1")
    version("3.0.2")
    depends_on("mpi")
    depends_on("hdf5+mpi+fortran")
    depends_on("petsc+mpi")


class Omega_h(CMakePackage):
    """Reliable mesh adaptation on simplices."""

    name = "omega-h"

    version("10.1.0")
    version("9.34.13")
    variant("mpi", default=True, description="MPI support")
    variant("kokkos", default=False, description="Use Kokkos")
    depends_on("mpi", when="+mpi")
    depends_on("kokkos", when="+kokkos")
    depends_on("zlib")


class Pumi(CMakePackage):
    """Parallel unstructured mesh infrastructure."""

    version("2.2.8")
    version("2.2.7")
    depends_on("mpi")
    depends_on("zlib")


class Precice(CMakePackage):
    """Coupling library for partitioned multi-physics simulations."""

    version("2.5.0")
    version("2.4.0")
    variant("mpi", default=True, description="MPI communication")
    variant("petsc", default=True, description="PETSc-based RBF mapping")
    variant("python", default=False, description="Python actions")
    depends_on("boost@1.71:")
    depends_on("eigen")
    depends_on("libxml2")
    depends_on("mpi", when="+mpi")
    depends_on("petsc+mpi", when="+petsc+mpi")
    depends_on("python", when="+python")
    depends_on("py-numpy", when="+python")


class Flecsi(CMakePackage):
    """Compile-time configurable framework for multi-physics applications."""

    version("2.2.0")
    version("2.1.0")
    variant("backend", default="mpi", values=("mpi", "legion", "hpx"), description="Distributed-memory backend")
    depends_on("mpi")
    depends_on("legion", when="backend=legion")
    depends_on("hpx", when="backend=hpx")
    depends_on("boost@1.70:")
    depends_on("metis")
    depends_on("parmetis")


class Cabana(CMakePackage):
    """Performance-portable particle algorithms library (Co-design center)."""

    version("0.5.0")
    version("0.4.0")
    variant("mpi", default=True, description="MPI support")
    variant("cuda", default=False, description="CUDA support")
    depends_on("kokkos")
    depends_on("kokkos+cuda", when="+cuda")
    depends_on("mpi", when="+mpi")


class Axom(CMakePackage):
    """CS infrastructure components for HPC applications (LLNL)."""

    version("0.7.0")
    version("0.6.1")
    variant("mpi", default=True, description="MPI support")
    variant("openmp", default=True, description="OpenMP support")
    variant("cuda", default=False, description="CUDA support")
    depends_on("mpi", when="+mpi")
    depends_on("conduit")
    depends_on("umpire")
    depends_on("raja")
    depends_on("hdf5")
    depends_on("cuda", when="+cuda")


class Exawind(CMakePackage):
    """ExaWind wind-farm simulation suite root package."""

    version("1.0.0")
    depends_on("trilinos+mpi")
    depends_on("hypre+mpi")
    depends_on("yaml-cpp")
    depends_on("boost")
    depends_on("mpi")


class Nekbone(Package):
    """Proxy app for the Nek5000 spectral-element solver."""

    version("17.0")
    version("3.1")
    depends_on("mpi")
    depends_on("blas")


class Laghos(MakefilePackage):
    """High-order Lagrangian hydrodynamics miniapp built on MFEM."""

    version("3.1")
    version("3.0")
    depends_on("mfem+mpi")
    depends_on("mpi")


class Examinimd(CMakePackage):
    """ExaMiniMD molecular dynamics proxy app."""

    version("1.0")
    depends_on("kokkos")
    depends_on("mpi")


class Swig4hpc(Package):
    """Placeholder root exercising the toolchain (swig + python + numpy)."""

    name = "swig4hpc"

    version("1.0")
    depends_on("swig")
    depends_on("python")
    depends_on("py-numpy")


class E4sProxyApps(Package):
    """A meta-package root that pulls a representative slice of E4S."""

    name = "e4s-proxy-apps"

    version("23.05")
    version("22.11")
    depends_on("laghos")
    depends_on("nekbone")
    depends_on("examinimd")
    depends_on("amrex")
    depends_on("miniqmc")


class Miniqmc(CMakePackage):
    """Simplified QMCPACK miniapp."""

    version("0.4.0")
    depends_on("blas")
    depends_on("lapack")
    depends_on("mpi")
