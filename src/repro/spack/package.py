"""Package base classes and the metaclass that collects directives.

A package is a Python class (Figure 2 in the paper)::

    class Hpctoolkit(AutotoolsPackage):
        variant("mpi", default=False, description="...")
        depends_on("mpi", when="+mpi")

Directives executed in the class body are buffered by
:mod:`repro.spack.directives`; :class:`PackageMeta` pops the buffer and turns
it into structured per-class metadata (versions, variants, dependencies,
conflicts, provided virtuals).  Subclassing merges the parents' metadata, so
``CMakePackage`` can add a build dependency on ``cmake`` for every package that
uses it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spack.directives import (
    ConflictDecl,
    DependencyDecl,
    ProvidesDecl,
    VariantDecl,
    VersionDecl,
    collect_directives,
    depends_on,
)
from repro.spack.errors import PackageError
from repro.spack.spec import Spec
from repro.spack.version import Version


def class_name_to_package_name(class_name: str) -> str:
    """``Hpctoolkit`` -> ``hpctoolkit``, ``PyNumpy`` -> ``py-numpy``,
    ``NetlibScalapack`` -> ``netlib-scalapack``, ``_3proxy`` -> ``3proxy``."""
    name = class_name.lstrip("_")
    parts = re.findall(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])", name)
    return "-".join(part.lower() for part in parts)


class PackageMeta(type):
    """Collects buffered directives into class-level metadata."""

    def __new__(mcs, name, bases, namespace, **kwargs):
        cls = super().__new__(mcs, name, bases, namespace, **kwargs)

        # Merge metadata from the base classes first (build-system bases may
        # inject dependencies such as cmake or gmake).
        versions: Dict[Version, VersionDecl] = {}
        variants: Dict[str, VariantDecl] = {}
        dependencies: List[DependencyDecl] = []
        conflict_decls: List[ConflictDecl] = []
        provided: List[ProvidesDecl] = []
        for base in bases:
            versions.update(getattr(base, "versions", {}))
            variants.update(getattr(base, "variants", {}))
            dependencies.extend(getattr(base, "dependencies", []))
            conflict_decls.extend(getattr(base, "conflict_decls", []))
            provided.extend(getattr(base, "provided", []))

        for record in collect_directives():
            if isinstance(record, VersionDecl):
                versions[record.version] = record
            elif isinstance(record, VariantDecl):
                variants[record.name] = record
            elif isinstance(record, DependencyDecl):
                dependencies.append(record)
            elif isinstance(record, ConflictDecl):
                conflict_decls.append(record)
            elif isinstance(record, ProvidesDecl):
                provided.append(record)

        cls.versions = versions
        cls.variants = variants
        cls.dependencies = dependencies
        cls.conflict_decls = conflict_decls
        cls.provided = provided
        if "name" not in namespace:
            cls.name = class_name_to_package_name(name)
        return cls


class PackageBase(metaclass=PackageMeta):
    """Base class of every package recipe."""

    #: populated by PackageMeta
    name: str = "package-base"
    versions: Dict[Version, VersionDecl] = {}
    variants: Dict[str, VariantDecl] = {}
    dependencies: List[DependencyDecl] = []
    conflict_decls: List[ConflictDecl] = []
    provided: List[ProvidesDecl] = []

    def __init__(self, spec: Optional[Spec] = None):
        self.spec = spec

    # ------------------------------------------------------------------
    # Version helpers
    # ------------------------------------------------------------------

    @classmethod
    def declared_versions(cls) -> List[Version]:
        """All declared versions, newest first."""
        return sorted(cls.versions, reverse=True)

    @classmethod
    def usable_versions(cls) -> List[Version]:
        """Non-deprecated versions, newest first, preferred versions on top."""
        usable = [v for v, decl in cls.versions.items() if not decl.deprecated]
        return sorted(
            usable,
            key=lambda v: (cls.versions[v].preferred, v),
            reverse=True,
        )

    @classmethod
    def preferred_version(cls) -> Version:
        usable = cls.usable_versions()
        if usable:
            return usable[0]
        declared = cls.declared_versions()
        if declared:
            return declared[0]
        raise PackageError(f"package {cls.name} declares no versions")

    @classmethod
    def version_weights(cls) -> Dict[Version, int]:
        """Weight per declared version: 0 = most preferred (paper Section V).

        Deprecated versions sort after every non-deprecated one so that the
        highest-priority criterion ("deprecated versions used") only has to
        count them.
        """
        non_deprecated = cls.usable_versions()
        deprecated = sorted(
            (v for v, decl in cls.versions.items() if decl.deprecated), reverse=True
        )
        ordered = non_deprecated + deprecated
        return {version: weight for weight, version in enumerate(ordered)}

    # ------------------------------------------------------------------
    # Variant helpers
    # ------------------------------------------------------------------

    @classmethod
    def variant_default(cls, name: str):
        try:
            return cls.variants[name].default
        except KeyError:
            raise PackageError(f"package {cls.name} has no variant {name!r}") from None

    @classmethod
    def default_variants(cls) -> Dict[str, object]:
        return {name: decl.default for name, decl in cls.variants.items()}

    # ------------------------------------------------------------------
    # Dependency helpers
    # ------------------------------------------------------------------

    @classmethod
    def dependency_names(cls) -> List[str]:
        """Names of everything this package can ever depend on (conditions ignored)."""
        seen = []
        for dependency in cls.dependencies:
            if dependency.name not in seen:
                seen.append(dependency.name)
        return seen

    @classmethod
    def provided_virtuals(cls) -> List[str]:
        seen = []
        for record in cls.provided:
            if record.name not in seen:
                seen.append(record.name)
        return seen

    # ------------------------------------------------------------------
    # Build interface (exercised by the store's install())
    # ------------------------------------------------------------------

    def install(self, spec: Spec, prefix: str):  # pragma: no cover - overridden
        """Install ``spec`` into ``prefix``.  The default recipe does nothing;
        real packages override this (our synthetic ones usually don't need to)."""

    def __repr__(self):
        return f"<Package {self.name}>"


# ---------------------------------------------------------------------------
# Build-system base classes (they contribute common build dependencies)
# ---------------------------------------------------------------------------


class Package(PackageBase):
    """A generic package with a hand-written build."""


class MakefilePackage(PackageBase):
    """Built with plain ``make``."""


class AutotoolsPackage(PackageBase):
    """Built with ``configure && make && make install``."""


class CMakePackage(PackageBase):
    """Built with CMake.

    Mirroring Spack, every CMake package implicitly carries a build dependency
    on ``cmake`` — one of the reasons the paper's "possible dependency" counts
    blow up for so many packages (Section VII-B).
    """

    depends_on("cmake", type="build")


class PythonPackage(PackageBase):
    """A Python extension: implicitly depends on ``python``."""

    depends_on("python", type=("build", "run"))
    depends_on("py-setuptools", type="build")
