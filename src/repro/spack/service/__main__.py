"""CLI entry point: ``python -m repro.spack.service [--host H] [--port P]``.

Serves the builtin catalog as the ``default`` tenant.  Options mirror the
:class:`~repro.spack.service.app.ConcretizationService` constructor knobs
that matter operationally (concurrency, queue depth, default deadline),
plus ``--workers N`` for the pre-forked multi-process mode: N processes
accept on one socket and share warm ground state through the mmap
snapshot files under ``--cache-dir`` (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import argparse

from repro.spack.concretize.config import SessionConfig
from repro.spack.service.app import ConcretizationService
from repro.spack.service.http import serve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spack.service",
        description="Serve the ASP concretizer over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=1,
                        help="server processes sharing the listen socket; "
                             "combine with --cache-dir so they share one "
                             "ground snapshot")
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=8)
    parser.add_argument("--deadline", type=float, default=30.0,
                        help="default per-request deadline in seconds")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent solve/ground/snapshot cache directory")
    parser.add_argument("--no-snapshots", action="store_true",
                        help="disable mmap ground snapshots (pickle cache only)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.workers > 1 and not args.cache_dir:
        parser.error("--workers > 1 requires --cache-dir (workers share warm "
                     "state through the snapshot cache on disk)")

    session_config = SessionConfig(
        cache_dir=args.cache_dir,
        snapshots=not args.no_snapshots,
    )

    def service_factory() -> ConcretizationService:
        return ConcretizationService(
            max_concurrency=args.max_concurrency,
            queue_limit=args.queue_limit,
            default_deadline_s=args.deadline,
            session_config=session_config,
        )

    serve(
        args.host,
        args.port,
        verbose=not args.quiet,
        workers=args.workers,
        service_factory=service_factory,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
