"""CLI entry point: ``python -m repro.spack.service [--host H] [--port P]``.

Serves the builtin catalog as the ``default`` tenant.  Options mirror the
:class:`~repro.spack.service.app.ConcretizationService` constructor knobs
that matter operationally (concurrency, queue depth, default deadline).
"""

from __future__ import annotations

import argparse

from repro.spack.service.app import ConcretizationService
from repro.spack.service.http import serve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spack.service",
        description="Serve the ASP concretizer over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=8)
    parser.add_argument("--deadline", type=float, default=30.0,
                        help="default per-request deadline in seconds")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent solve/ground cache directory")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    session_kwargs = {"cache_dir": args.cache_dir} if args.cache_dir else None
    service = ConcretizationService(
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline,
        session_kwargs=session_kwargs,
    )
    serve(args.host, args.port, service=service, verbose=not args.quiet)
    service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
