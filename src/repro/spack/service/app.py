"""The transport-independent core of the concretization service.

:class:`ConcretizationService` fronts one
:class:`~repro.spack.concretize.async_session.AsyncConcretizationSession`
per tenant with the three behaviors a real multi-user deployment needs:

* **deadlines** — every request carries a deadline in seconds (its own, or
  the service default).  The solve runs under ``asyncio.wait_for``; hitting
  the deadline *cancels* the in-flight work through the async session's
  cancellation machinery (leased workers are returned, pending pool futures
  cancelled — nothing leaks) and surfaces as
  :class:`DeadlineExceededError` (HTTP 504);
* **backpressure** — a bounded admission queue maps onto the session's
  ``max_concurrency``: at most ``max_concurrency + queue_limit`` requests
  may be in flight (admitted requests beyond ``max_concurrency`` wait on
  the session semaphore); one more is shed immediately with
  :class:`OverloadedError` (HTTP 429 + ``Retry-After``) instead of queueing
  without bound;
* **per-tenant catalogs** — each registered tenant gets its own composed
  repository via :meth:`~repro.spack.repo.ShardedRepository.compose`
  (tenant overlay shards layered *over* the shared base catalog), its own
  session, and its own solve cache.  Because overlay shards ground last,
  the base catalog's ground layers are shared across every tenant through
  the process-wide layer memo, and a tenant editing its overlay re-grounds
  exactly one layer — warm per-tenant state stays cheap (see
  ``docs/CACHING.md``).

The service owns a private asyncio event loop on a daemon thread; transport
handlers (one thread per HTTP request in
:mod:`repro.spack.service.http`) submit coroutines to it with
``asyncio.run_coroutine_threadsafe`` and block on the result.  All session
state therefore mutates on a single loop thread, exactly like a normal
async-session consumer.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import warnings
from contextlib import aclosing
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.asp.configs import SolverPreset
from repro.spack.concretize.async_session import AsyncConcretizationSession
from repro.spack.concretize.concretizer import ConcretizationResult
from repro.spack.concretize.config import LEGACY_SESSION_KWARGS, SessionConfig
from repro.spack.concretize.session import ConcretizationSession
from repro.spack.errors import (
    SpackError,
    SpecSyntaxError,
    UnknownPackageError,
    UnsatisfiableSpecError,
)
from repro.spack.package import PackageBase
from repro.spack.repo import Repository, RepositoryShard, ShardedRepository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec

#: Name under which requests without a tenant resolve (the shared base
#: catalog, no overlay).
DEFAULT_TENANT = "default"


# ---------------------------------------------------------------------------
# Service-level errors (each knows its HTTP status)
# ---------------------------------------------------------------------------


def error_body(
    status: int, code: str, message: str, detail: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The one error envelope every service response uses.

    All error bodies — every 400/404/422/429/499/500/504 JSON response and
    every terminal NDJSON error record — have exactly this shape::

        {"status": <int>, "error": {"code": ..., "message": ..., "detail": {...}}}

    ``code`` is a stable machine-readable identifier (``bad_request``,
    ``unknown_tenant``, ``unsolvable``, ``overloaded``,
    ``deadline_exceeded``, ``not_found``, ``cancelled``, ``internal``);
    ``message`` is human-readable and may change; ``detail`` carries
    error-specific structured fields (possibly empty, never absent).  See
    ``docs/SERVICE.md``.
    """
    return {
        "status": status,
        "error": {"code": code, "message": message, "detail": dict(detail or {})},
    }


class ServiceError(SpackError):
    """Base class for request-level service failures."""

    status = 500
    code = "internal"

    def detail(self) -> Dict[str, object]:
        """Error-specific structured fields (the ``error.detail`` object)."""
        return {}

    def payload(self) -> Dict[str, object]:
        return error_body(self.status, self.code, str(self), self.detail())


class BadRequestError(ServiceError):
    """Malformed request: unparsable spec, bad deadline, bad body (400)."""

    status = 400
    code = "bad_request"


class UnknownTenantError(ServiceError):
    """The request names a tenant that was never registered (404)."""

    status = 404
    code = "unknown_tenant"

    def __init__(self, tenant: str):
        super().__init__(f"unknown tenant {tenant!r}")
        self.tenant = tenant

    def detail(self) -> Dict[str, object]:
        return {"tenant": self.tenant}


class OverloadedError(ServiceError):
    """The admission queue is full; shed load instead of queueing (429)."""

    status = 429
    code = "overloaded"

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"admission queue full, retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s

    def detail(self) -> Dict[str, object]:
        return {"retry_after_s": self.retry_after_s}


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed; its solve was cancelled (504)."""

    status = 504
    code = "deadline_exceeded"

    def __init__(self, deadline_s: float):
        super().__init__(f"deadline of {deadline_s:g}s exceeded")
        self.deadline_s = deadline_s

    def detail(self) -> Dict[str, object]:
        return {"deadline_s": self.deadline_s}


class UnsolvableError(ServiceError):
    """The spec parsed but cannot be concretized (422).

    For unsatisfiable specs ``error.detail`` carries the **minimal conflict
    core** extracted by :func:`~repro.spack.concretize.explain.explain_unsat`
    — ``conflict_core`` is a list of constraint-provenance dicts (package,
    kind, directive, when, and a rendered ``constraint`` line) — plus the
    ``specs`` that were requested, so clients can show *why* without parsing
    the message text.
    """

    status = 422
    code = "unsolvable"

    def __init__(
        self,
        message: str,
        explanation: Optional[Sequence[Dict[str, object]]] = None,
        specs: Optional[Sequence[str]] = None,
    ):
        super().__init__(message)
        self.explanation = list(explanation or ())
        self.specs = list(specs or ())

    def detail(self) -> Dict[str, object]:
        body: Dict[str, object] = {"conflict_core": self.explanation}
        if self.specs:
            body["specs"] = self.specs
        return body


# ---------------------------------------------------------------------------
# Tenants
# ---------------------------------------------------------------------------


class TenantState:
    """One tenant's composed catalog and its (async) session."""

    def __init__(
        self,
        name: str,
        repo: Repository,
        *,
        max_concurrency: int,
        session_config: SessionConfig,
        session_kwargs: Optional[Dict] = None,
    ):
        self.name = name
        self.repo = repo
        self.session = ConcretizationSession(
            repo=repo, session_config=session_config, **(session_kwargs or {})
        )
        self.async_session = AsyncConcretizationSession(
            session=self.session, max_concurrency=max_concurrency
        )
        self.overlay: Optional[ShardedRepository] = None
        self.requests = 0

    def statistics(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "requests": self.requests,
            "catalog": self.repo.name,
            "packages": len(self.repo),
        }
        stats.update(self.session.statistics())
        return stats


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ConcretizationService:
    """Deadline- and backpressure-aware front end over per-tenant sessions.

    Parameters:

    * ``base_repo`` — the shared base catalog every tenant composes over
      (default: :func:`~repro.spack.repo.builtin_repository`);
    * ``max_concurrency`` — solver concurrency bound per tenant session
      (the async session's semaphore);
    * ``queue_limit`` — how many admitted requests may *wait* beyond
      ``max_concurrency`` before new ones are shed with 429;
    * ``default_deadline_s`` — deadline applied when a request carries none;
    * ``retry_after_s`` — the hint returned with 429 responses;
    * ``session_config`` — a :class:`~repro.spack.concretize.SessionConfig`
      applied to every tenant session (``cache_dir`` for warm restarts and
      shared snapshots, ``join_strategy``, cache bounds, ...).  The service
      resolves a ``worker_backend`` of ``"auto"`` to ``"thread"``: the
      service process runs many transport threads, and forking a process
      pool out of a threaded server is a foot-gun;
    * ``worker_backend`` — explicit backend override for the underlying
      sessions (wins over ``session_config.worker_backend``);
    * ``session_kwargs`` — *deprecated*: extra
      :class:`ConcretizationSession` keyword arguments applied to every
      tenant session.  Configuration keys (``cache_dir``, ...) fold into
      ``session_config``; pass :class:`SessionConfig` directly instead.

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        base_repo: Optional[Repository] = None,
        *,
        max_concurrency: Optional[int] = None,
        queue_limit: int = 8,
        default_deadline_s: float = 30.0,
        retry_after_s: float = 1.0,
        worker_backend: Optional[str] = None,
        session_config: Optional[SessionConfig] = None,
        session_kwargs: Optional[Dict] = None,
    ):
        config = session_config if session_config is not None else SessionConfig()
        extra = dict(session_kwargs or {})
        if extra:
            warnings.warn(
                "ConcretizationService(session_kwargs=...) is deprecated; pass "
                "session_config=SessionConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides = {
                LEGACY_SESSION_KWARGS[key]: extra.pop(key)
                for key in list(extra)
                if key in LEGACY_SESSION_KWARGS
            }
            if overrides:
                config = config.replace(**overrides)
        if worker_backend is None:
            worker_backend = (
                "thread"
                if config.worker_backend == "auto"
                else config.worker_backend
            )
        config = config.replace(worker_backend=worker_backend)
        if max_concurrency is None:
            max_concurrency = (
                config.max_concurrency if config.max_concurrency is not None else 4
            )
        if int(max_concurrency) < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency!r}")
        if int(queue_limit) < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit!r}")
        self.base_repo = base_repo if base_repo is not None else builtin_repository()
        self.max_concurrency = int(max_concurrency)
        self.queue_limit = int(queue_limit)
        self.default_deadline_s = float(default_deadline_s)
        self.retry_after_s = float(retry_after_s)
        self.worker_backend = worker_backend
        self.session_config = config
        self.session_kwargs = extra  # non-config leftovers (repo wiring, ...)

        self._admission = threading.Semaphore(self.max_concurrency + self.queue_limit)
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "completed": 0,
            "rejected_overload": 0,
            "deadline_exceeded": 0,
            "parse_errors": 0,
            "unsolvable": 0,
            "in_flight": 0,
            "specs_concretized": 0,
        }

        self._tenants: Dict[str, TenantState] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        self.add_tenant(DEFAULT_TENANT)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ConcretizationService":
        """Start the private event-loop thread (idempotent)."""
        if self._started and not self._closed:
            return self
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.call_soon(ready.set)
            loop.run_forever()
            # drain: close abandoned async generators before the loop dies
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._loop = loop
        self._thread = threading.Thread(
            target=run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        ready.wait()
        self._started = True
        self._closed = False
        return self

    def close(self) -> None:
        """Stop the loop thread and release every tenant session."""
        if not self._started or self._closed:
            self._closed = True
            return
        loop = self._loop

        async def shutdown():
            for state in self._tenants.values():
                await state.async_session.aclose()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        except Exception:
            pass  # best effort: closing must never raise
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._closed = True

    def __enter__(self) -> "ConcretizationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- tenants --------------------------------------------------------

    def add_tenant(
        self,
        name: str,
        packages: Iterable[Type[PackageBase]] = (),
        overlay: Optional[Repository] = None,
    ) -> TenantState:
        """Register a tenant catalog composed over the shared base.

        ``packages`` become the tenant's overlay shard; alternatively pass a
        ready-made ``overlay`` repository.  With neither, the tenant serves
        the base catalog as-is (still useful: it gets its own solve cache
        and statistics).  The composed repository layers overlay shards
        *after* the base shards, so every tenant shares the base ground
        layers and a tenant overlay edit re-grounds exactly one layer.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        packages = list(packages)
        if overlay is None and packages:
            overlay = ShardedRepository(
                name=name, shards=[RepositoryShard(f"{name}-overlay", packages)]
            )
        if overlay is None:
            repo: Repository = self.base_repo
        else:
            repo = ShardedRepository.compose(overlay, self.base_repo)
        state = TenantState(
            name,
            repo,
            max_concurrency=self.max_concurrency,
            session_config=self.session_config,
            session_kwargs=self.session_kwargs,
        )
        state.overlay = overlay if isinstance(overlay, ShardedRepository) else None
        self._tenants[name] = state
        return state

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def _tenant(self, name: Optional[str]) -> TenantState:
        state = self._tenants.get(name or DEFAULT_TENANT)
        if state is None:
            raise UnknownTenantError(name)
        return state

    # -- request plumbing ----------------------------------------------

    def _count(self, key: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[key] += delta

    def _parse_specs(self, texts: Sequence[str]) -> List[Spec]:
        if not texts:
            raise BadRequestError("empty batch: no specs to concretize")
        specs: List[Spec] = []
        for text in texts:
            if not isinstance(text, str) or not text.strip():
                self._count("parse_errors")
                raise BadRequestError(f"empty or non-string spec: {text!r}")
            try:
                specs.append(parse_spec(text))
            except SpecSyntaxError as exc:
                self._count("parse_errors")
                raise BadRequestError(f"unparsable spec {text!r}: {exc}") from exc
            except SpackError as exc:
                self._count("parse_errors")
                raise BadRequestError(f"invalid spec {text!r}: {exc}") from exc
        return specs

    @staticmethod
    def _parse_preset(preset):
        """Validate a per-request solver preset (name, dict, or instance).

        Invalid values are a *request* problem, not a solver one: they map
        to 400 with the validator's message intact.
        """
        if preset is None:
            return None
        try:
            return SolverPreset.from_value(preset)
        except (ValueError, TypeError) as exc:
            raise BadRequestError(f"invalid solver preset: {exc}") from exc

    def _deadline(self, deadline_s: Optional[float]) -> float:
        if deadline_s is None:
            return self.default_deadline_s
        try:
            deadline = float(deadline_s)
        except (TypeError, ValueError):
            raise BadRequestError(f"deadline must be a number, got {deadline_s!r}") from None
        if deadline <= 0:
            raise BadRequestError(f"deadline must be > 0 seconds, got {deadline!r}")
        return deadline

    def _admit(self) -> None:
        if not self._admission.acquire(blocking=False):
            self._count("rejected_overload")
            raise OverloadedError(self.retry_after_s)
        self._count("admitted")
        self._count("in_flight")

    def _release(self) -> None:
        self._admission.release()
        self._count("in_flight", -1)

    @staticmethod
    def _map_solve_error(exc: BaseException) -> ServiceError:
        if isinstance(exc, ServiceError):
            return exc
        if isinstance(exc, UnknownPackageError):
            return UnsolvableError(str(exc))
        if isinstance(exc, UnsatisfiableSpecError):
            return UnsolvableError(
                str(exc),
                explanation=[
                    {
                        "package": entry.package,
                        "kind": entry.kind,
                        "directive": entry.directive,
                        "when": entry.when,
                        "constraint": entry.describe(),
                    }
                    for entry in exc.explanation
                ],
                specs=list(exc.specs),
            )
        if isinstance(exc, SpackError):
            return UnsolvableError(str(exc))
        raise exc  # genuinely unexpected: let the transport return 500

    def _result_payload(
        self, index: int, text: str, result: ConcretizationResult
    ) -> Dict[str, object]:
        session_stats = result.statistics.get("session")
        cache = (
            session_stats.get("solve_cache")
            if isinstance(session_stats, dict)
            else None
        )
        return {
            "index": index,
            "spec": text,
            "concrete": str(result.spec),
            "dag_hash": result.spec.dag_hash(),
            "nodes": len(result.specs),
            "built": sorted(result.built),
            "reused": sorted(result.reused),
            "solve_cache": cache,
        }

    # -- solving --------------------------------------------------------

    async def _run_batch(
        self,
        state: TenantState,
        specs: List[Spec],
        deadline_s: float,
        preset=None,
    ) -> List[ConcretizationResult]:
        try:
            return await asyncio.wait_for(
                state.async_session.concretize_batch(specs, preset=preset),
                timeout=deadline_s,
            )
        except asyncio.TimeoutError:
            # wait_for cancelled the batch task before raising: the async
            # session's cleanup already returned the leased workers
            raise DeadlineExceededError(deadline_s) from None

    def _check_running(self) -> None:
        if not self._started or self._closed:
            raise RuntimeError("service is not running (call start() first)")

    def _submit(self, coro) -> object:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result()
        except BaseException:
            future.cancel()
            raise

    def concretize(
        self,
        spec: str,
        *,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
        preset=None,
    ) -> Dict[str, object]:
        """Concretize one spec; the ``POST /v1/concretize`` core."""
        return self.concretize_batch(
            [spec], tenant=tenant, deadline_s=deadline_s, preset=preset
        )["results"][0]

    def concretize_batch(
        self,
        specs: Sequence[str],
        *,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
        preset=None,
    ) -> Dict[str, object]:
        """Concretize a batch (input order); ``POST /v1/concretize_batch``.

        ``preset`` pins the batch's CDCL heuristics to a validated
        :class:`~repro.asp.configs.SolverPreset` (results are
        preset-invariant; only wall time changes).
        """
        self._check_running()
        self._count("requests")
        state = self._tenant(tenant)
        preset = self._parse_preset(preset)
        parsed = self._parse_specs(list(specs))
        deadline = self._deadline(deadline_s)
        self._admit()
        try:
            state.requests += 1
            try:
                results = self._submit(
                    self._run_batch(state, parsed, deadline, preset=preset)
                )
            except DeadlineExceededError:
                self._count("deadline_exceeded")
                raise
            except Exception as exc:
                mapped = self._map_solve_error(exc)
                self._count("unsolvable")
                raise mapped from exc
            self._count("completed")
            self._count("specs_concretized", len(results))
            return {
                "tenant": state.name,
                "deadline_s": deadline,
                "results": [
                    self._result_payload(index, str(specs[index]), result)
                    for index, result in enumerate(results)
                ],
            }
        finally:
            self._release()

    # -- streaming ------------------------------------------------------

    async def _pump(
        self,
        state: TenantState,
        texts: List[str],
        specs: List[Spec],
        deadline_s: float,
        out: "queue.Queue",
        preset=None,
    ) -> None:
        """Drive ``as_completed`` on the loop, feeding a thread-safe queue.

        The stream is consumed under ``aclosing`` so *any* exit — deadline
        cancellation, a solver error, the transport dropping the connection
        — deterministically closes the generator and returns the leased
        workers.
        """
        try:
            async def consume():
                async with aclosing(
                    state.async_session.as_completed(specs, preset=preset)
                ) as stream:
                    async for index, result in stream:
                        self._count("specs_concretized")
                        out.put(
                            ("result", self._result_payload(index, texts[index], result))
                        )

            await asyncio.wait_for(consume(), timeout=deadline_s)
        except asyncio.TimeoutError:
            self._count("deadline_exceeded")
            out.put(("error", DeadlineExceededError(deadline_s).payload()))
        except asyncio.CancelledError:
            out.put(("error", error_body(499, "cancelled", "stream cancelled")))
            raise
        except Exception as exc:  # solver/encode errors end the stream
            try:
                mapped = self._map_solve_error(exc)
            except BaseException:
                out.put(("error", error_body(500, "internal", f"internal error: {exc}")))
            else:
                self._count("unsolvable")
                out.put(("error", mapped.payload()))
        else:
            self._count("completed")
            out.put(("end", {"status": "ok", "results": len(specs)}))

    def stream_batch(
        self,
        specs: Sequence[str],
        *,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
        preset=None,
    ) -> Iterator[Dict[str, object]]:
        """Yield per-result records in *completion* order, then a summary.

        Admission and parsing happen before the first record (so overload
        and bad requests surface as plain error responses); afterwards the
        caller receives ``{"index", "spec", "concrete", ...}`` records as
        solves finish, terminated by either ``{"status": "ok"}`` or an
        error record (e.g. a mid-stream deadline).  Abandoning the iterator
        cancels the in-flight work.
        """
        self._check_running()
        self._count("requests")
        state = self._tenant(tenant)
        preset = self._parse_preset(preset)
        texts = [str(text) for text in specs]
        parsed = self._parse_specs(texts)
        deadline = self._deadline(deadline_s)
        self._admit()

        def generate() -> Iterator[Dict[str, object]]:
            out: "queue.Queue" = queue.Queue()
            state.requests += 1
            future = asyncio.run_coroutine_threadsafe(
                self._pump(state, texts, parsed, deadline, out, preset=preset),
                self._loop,
            )
            try:
                while True:
                    kind, payload = out.get()
                    yield payload
                    if kind != "result":
                        break
                future.result(timeout=10)
            finally:
                future.cancel()
                self._release()

        return generate()

    # -- introspection --------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return {
            "status": "ok" if self._started and not self._closed else "stopped",
            "tenants": self.tenants(),
            "max_concurrency": self.max_concurrency,
            "queue_limit": self.queue_limit,
        }

    def statistics(self) -> Dict[str, object]:
        """Service counters plus per-tenant session/cache statistics.

        ``service.snapshot`` rolls up warm-start provenance across every
        tenant session: how many grounded bases arrived by **attaching** an
        mmap snapshot versus being **cold-ground** from scratch (the number
        a multi-process deployment watches to confirm workers share one
        warm base — see ``docs/ARCHITECTURE.md``).
        """
        with self._lock:
            counters = dict(self.counters)
        snapshot = {"attaches": 0, "writes": 0, "cold_grounds": 0}
        for state in self._tenants.values():
            stats = state.session.stats
            snapshot["attaches"] += stats.snapshot_attaches
            snapshot["writes"] += stats.snapshot_writes
            snapshot["cold_grounds"] += (
                stats.base_groundings + stats.shard_layers_grounded
            )
        return {
            "service": {
                **counters,
                "max_concurrency": self.max_concurrency,
                "queue_limit": self.queue_limit,
                "default_deadline_s": self.default_deadline_s,
                "snapshot": snapshot,
            },
            "tenants": {
                name: state.statistics() for name, state in self._tenants.items()
            },
        }
