"""Concretization-as-a-service: an HTTP front end over async sessions.

Two layers:

* :mod:`repro.spack.service.app` — :class:`ConcretizationService`, the
  transport-independent core: per-tenant catalogs (composed over a shared
  base via :meth:`~repro.spack.repo.ShardedRepository.compose`), request
  deadlines enforced through async-session cancellation, and a bounded
  admission queue that sheds load instead of queueing without bound;
* :mod:`repro.spack.service.http` — a stdlib ``http.server``-on-threads
  transport exposing ``POST /v1/concretize``, ``POST /v1/concretize_batch``
  (ordered, or streamed NDJSON in completion order), ``GET /v1/healthz``,
  and ``GET /v1/stats``.

Run a server with ``python -m repro.spack.service`` (see the README
quickstart), or embed the pieces directly::

    from repro.spack.service import ConcretizationService, ConcretizationServer

    with ConcretizationService(max_concurrency=4) as service:
        server = ConcretizationServer(service, host="127.0.0.1", port=8080)
        server.start()
        ...
        server.stop()

No third-party dependencies: the transport is the standard library's
threading HTTP server, and all solving happens on the service's private
asyncio loop through :class:`~repro.spack.concretize.async_session.\
AsyncConcretizationSession`.
"""

from repro.spack.service.app import (
    DEFAULT_TENANT,
    BadRequestError,
    ConcretizationService,
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    TenantState,
    UnknownTenantError,
    UnsolvableError,
)
from repro.spack.service.http import ConcretizationServer, serve

__all__ = [
    "DEFAULT_TENANT",
    "BadRequestError",
    "ConcretizationServer",
    "ConcretizationService",
    "DeadlineExceededError",
    "OverloadedError",
    "ServiceError",
    "TenantState",
    "UnknownTenantError",
    "UnsolvableError",
    "serve",
]
