"""The HTTP transport for :class:`~repro.spack.service.app.ConcretizationService`.

A deliberately small stdlib server — :class:`ThreadingHTTPServer` with one
handler thread per connection, no third-party dependencies — that maps the
service core onto four endpoints:

``POST /v1/concretize``
    Body ``{"spec": "zlib@1.2.8", "tenant": ..., "deadline_s": ...,
    "preset": ...}`` (``preset`` optionally pins the CDCL heuristics to a
    named/validated :class:`~repro.asp.configs.SolverPreset`; invalid
    presets are 400s);
    responds with the concretized result payload.

``POST /v1/concretize_batch``
    Body ``{"specs": [...], "tenant": ..., "deadline_s": ..., "stream": bool,
    "preset": ...}``.
    Without ``stream``, responds with ``{"results": [...]}`` in input order.
    With ``"stream": true``, responds ``200 application/x-ndjson`` with one
    JSON record per line in *completion* order (chunked transfer encoding),
    terminated by a summary record — a mid-stream deadline or solver error
    arrives as a final record in the uniform error envelope.

``GET /v1/healthz`` / ``GET /v1/stats``
    Liveness and the service/tenant statistics payloads.

The deadline may ride in the body (``deadline_s``) or in an
``X-Deadline-Seconds`` header (body wins).  A tenant may likewise come from
the body (``tenant``) or an ``X-Tenant`` header.  Error mapping is the
service core's: 400 malformed request or spec, 404 unknown tenant/route,
422 unsolvable, 429 overloaded (with ``Retry-After``), 504 deadline
exceeded, 500 anything unexpected.  Every error body — including streamed
terminal records — is the :func:`~repro.spack.service.app.error_body`
envelope ``{"status": ..., "error": {"code", "message", "detail"}}``
documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.spack.service.app import (
    BadRequestError,
    ConcretizationService,
    OverloadedError,
    ServiceError,
    error_body,
)

MAX_BODY_BYTES = 1 << 20  # 1 MiB is plenty for spec batches


class ConcretizationRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the shared :class:`ConcretizationService`."""

    protocol_version = "HTTP/1.1"  # keep-alive + chunked streaming
    server_version = "repro-concretize/1"

    # quiet by default; the server enables logging when asked to
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self) -> ConcretizationService:
        return self.server.service

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status: int, payload: Dict, headers: Optional[Dict] = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: ServiceError):
        headers = {}
        if isinstance(exc, OverloadedError):
            headers["Retry-After"] = f"{exc.retry_after_s:g}"
        self._send_json(exc.status, exc.payload(), headers)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequestError("empty request body (expected JSON)")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    def _request_options(self, body: Dict) -> Tuple[Optional[str], Optional[float]]:
        tenant = body.get("tenant") or self.headers.get("X-Tenant")
        deadline = body.get("deadline_s")
        if deadline is None:
            header = self.headers.get("X-Deadline-Seconds")
            if header is not None:
                deadline = header  # validated (and 400-mapped) by the service
        return tenant, deadline

    # -- streaming ------------------------------------------------------

    def _stream_ndjson(self, records) -> None:
        """Write an iterator of dicts as chunked NDJSON; closing the iterator
        on a broken pipe cancels the in-flight work server-side."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for record in records:
                line = json.dumps(record).encode("utf-8") + b"\n"
                self.wfile.write(b"%x\r\n" % len(line) + line + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the finally below cancels the work
        finally:
            close = getattr(records, "close", None)
            if close is not None:
                close()

    # -- routes ---------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        try:
            if self.path == "/v1/healthz":
                self._send_json(200, self.service.healthz())
            elif self.path == "/v1/stats":
                self._send_json(200, self.service.statistics())
            else:
                self._send_json(404, self._no_route())
        except BrokenPipeError:
            pass

    def do_POST(self):  # noqa: N802 - stdlib naming
        try:
            if self.path == "/v1/concretize":
                self._concretize_one()
            elif self.path == "/v1/concretize_batch":
                self._concretize_batch()
            else:
                self._send_json(404, self._no_route())
        except ServiceError as exc:
            self._send_error_payload(exc)
        except BrokenPipeError:
            pass
        except Exception as exc:  # unexpected: 500, keep the worker alive
            self._send_json(500, error_body(500, "internal", f"internal error: {exc}"))

    def _no_route(self) -> Dict:
        return error_body(
            404, "not_found", f"no such route: {self.path}", {"path": self.path}
        )

    def _concretize_one(self):
        body = self._read_body()
        spec = body.get("spec")
        if not isinstance(spec, str):
            raise BadRequestError("body must carry a string 'spec' field")
        tenant, deadline = self._request_options(body)
        result = self.service.concretize(
            spec, tenant=tenant, deadline_s=deadline, preset=body.get("preset")
        )
        self._send_json(200, {"tenant": tenant or "default", "result": result})

    def _concretize_batch(self):
        body = self._read_body()
        specs = body.get("specs")
        if not isinstance(specs, list):
            raise BadRequestError("body must carry a list 'specs' field")
        tenant, deadline = self._request_options(body)
        preset = body.get("preset")
        if body.get("stream"):
            records = self.service.stream_batch(
                specs, tenant=tenant, deadline_s=deadline, preset=preset
            )
            self._stream_ndjson(records)
            return
        payload = self.service.concretize_batch(
            specs, tenant=tenant, deadline_s=deadline, preset=preset
        )
        self._send_json(200, payload)


class ConcretizationServer:
    """A threaded HTTP server bound to one :class:`ConcretizationService`.

    ``start()`` serves on a daemon thread and returns (``port`` is then the
    bound port — pass ``port=0`` for an ephemeral one); ``stop()`` shuts the
    listener down and joins the serving thread.  The service's lifecycle is
    the caller's: the server never closes it.
    """

    def __init__(
        self,
        service: ConcretizationService,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        verbose: bool = False,
    ):
        self.service = service
        self._httpd = ThreadingHTTPServer(
            (host, port), ConcretizationRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.service = service
        self._httpd.verbose = verbose
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ConcretizationServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ConcretizationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _serve_process(
    httpd: ThreadingHTTPServer, service_factory, verbose: bool
) -> None:
    """Serve forever on an already-bound listener with a process-local service.

    The service is created *after* any fork: each worker process owns its
    event loop and sessions, while warm state is shared through the ground
    snapshot files on disk (``SessionConfig(cache_dir=...)``) rather than
    through memory.
    """
    service = service_factory()
    service.start()
    httpd.daemon_threads = True
    httpd.service = service
    httpd.verbose = verbose
    try:
        httpd.serve_forever()
    finally:
        service.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    service: Optional[ConcretizationService] = None,
    verbose: bool = True,
    workers: int = 1,
    service_factory=None,
) -> None:
    """Run a server until interrupted (the ``python -m`` entry point).

    With ``workers > 1`` the listener socket is bound once, then the
    process forks: every worker process ``accept()``\\ s on the shared
    socket (the kernel load-balances connections) and builds its *own*
    :class:`ConcretizationService` from ``service_factory``.  Point the
    factory's :class:`~repro.spack.concretize.SessionConfig` at a shared
    ``cache_dir`` and the first worker to ground a base publishes an mmap
    snapshot that every other worker attaches — N processes, one warm
    base, near-zero-copy startup (``GET /v1/stats`` →
    ``service.snapshot`` shows attaches vs cold grounds per worker).
    Requires :func:`os.fork`; on platforms without it the worker count
    falls back to 1.
    """
    workers = int(workers)
    if workers > 1 and not hasattr(os, "fork"):
        print("os.fork is unavailable on this platform; serving with 1 worker")
        workers = 1
    if workers <= 1:
        own_service = service is None
        if service is None:
            factory = service_factory or ConcretizationService
            service = factory()
        service.start()
        server = ConcretizationServer(service, host, port, verbose=verbose)
        server.start()
        print(f"concretization service listening on {server.url}")
        try:
            while True:
                server._thread.join(timeout=1)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            server.stop()
            if own_service:
                service.close()
        return

    import signal

    if service is not None:
        raise ValueError(
            "workers > 1 needs a per-process service_factory, not a shared "
            "service instance"
        )
    factory = service_factory or ConcretizationService
    httpd = ThreadingHTTPServer((host, port), ConcretizationRequestHandler)
    bound_port = httpd.server_address[1]
    children = []
    for _ in range(1, workers):
        pid = os.fork()
        if pid == 0:  # worker: serve on the inherited socket, never return
            signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
            try:
                _serve_process(httpd, factory, verbose)
            finally:
                os._exit(0)
        children.append(pid)
    print(
        f"concretization service listening on http://{host}:{bound_port} "
        f"({workers} worker processes)"
    )
    try:
        _serve_process(httpd, factory, verbose)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        httpd.server_close()
        for pid in children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for pid in children:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
