"""Package DSL directives (``version``, ``variant``, ``depends_on``, ...).

Spack packages are Python classes whose bodies call *directives* (Figure 2 of
the paper).  Directives executed inside a class body are buffered globally and
attached to the class by :class:`repro.spack.package.PackageMeta` when the
class object is created — the same trick Spack itself uses.

Every directive is stored as a small declarative record; the concretizers (both
the ASP one and the greedy baseline) only ever read these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.spack.errors import PackageError
from repro.spack.spec import Spec, normalize_variant_value
from repro.spack.spec_parser import parse_spec
from repro.spack.version import Version


def _as_condition(when: Optional[Union[str, Spec]]) -> Optional[Spec]:
    if when is None:
        return None
    if isinstance(when, Spec):
        return when
    text = when.strip()
    if not text:
        return None
    return parse_spec(text)


@dataclass
class VersionDecl:
    """A ``version(...)`` directive."""

    version: Version
    deprecated: bool = False
    preferred: bool = False
    sha256: Optional[str] = None


@dataclass
class VariantDecl:
    """A ``variant(...)`` directive."""

    name: str
    default: Union[str, Tuple[str, ...]]
    values: Tuple[str, ...]
    multi: bool = False
    description: str = ""
    when: Optional[Spec] = None

    @property
    def is_boolean(self) -> bool:
        return set(self.values) == {"true", "false"}


@dataclass
class DependencyDecl:
    """A ``depends_on(...)`` directive."""

    spec: Spec
    when: Optional[Spec] = None
    type: Tuple[str, ...] = ("build", "link")

    @property
    def name(self) -> str:
        return self.spec.name

    def directive_string(self) -> str:
        """Canonical source rendering, shared by unsat-explanation provenance
        and the synthetic generator's planted ground truth."""
        return f'depends_on("{self.spec}")'


@dataclass
class ConflictDecl:
    """A ``conflicts(...)`` directive."""

    spec: Spec
    when: Optional[Spec] = None
    msg: str = ""

    def directive_string(self) -> str:
        """Canonical source rendering, shared by unsat-explanation provenance
        and the synthetic generator's planted ground truth."""
        return f'conflicts("{self.spec}")'


@dataclass
class ProvidesDecl:
    """A ``provides(...)`` directive (virtual packages)."""

    virtual: Spec
    when: Optional[Spec] = None

    @property
    def name(self) -> str:
        return self.virtual.name


DirectiveRecord = Union[VersionDecl, VariantDecl, DependencyDecl, ConflictDecl, ProvidesDecl]

# Directives executed inside a class body land here until PackageMeta collects
# them.  Class bodies execute sequentially, so a simple list works.
_directive_buffer: List[DirectiveRecord] = []


def _push(record: DirectiveRecord) -> DirectiveRecord:
    _directive_buffer.append(record)
    return record


def collect_directives() -> List[DirectiveRecord]:
    """Pop everything buffered since the last collection (used by PackageMeta)."""
    global _directive_buffer
    records, _directive_buffer = _directive_buffer, []
    return records


# ---------------------------------------------------------------------------
# The directives themselves
# ---------------------------------------------------------------------------


def version(
    version_string: Union[str, int, float],
    sha256: Optional[str] = None,
    deprecated: bool = False,
    preferred: bool = False,
) -> VersionDecl:
    """Declare a downloadable version of the package."""
    return _push(
        VersionDecl(
            version=Version(version_string),
            sha256=sha256,
            deprecated=deprecated,
            preferred=preferred,
        )
    )


def variant(
    name: str,
    default: Union[bool, str, Sequence[str]] = False,
    description: str = "",
    values: Optional[Sequence[str]] = None,
    multi: bool = False,
    when: Optional[Union[str, Spec]] = None,
) -> VariantDecl:
    """Declare a build option (variant)."""
    if values is None:
        if isinstance(default, bool):
            values = ("true", "false")
        else:
            raise PackageError(
                f"variant {name!r}: non-boolean variants must declare their values"
            )
    normalized_values = tuple(normalize_variant_value(v) for v in values)
    normalized_default = normalize_variant_value(default)
    if multi:
        if not isinstance(normalized_default, tuple):
            normalized_default = (normalized_default,)
        unknown = set(normalized_default) - set(normalized_values)
    else:
        unknown = set() if normalized_default in normalized_values else {normalized_default}
    if unknown:
        raise PackageError(
            f"variant {name!r}: default {sorted(unknown)} not among values {normalized_values}"
        )
    return _push(
        VariantDecl(
            name=name,
            default=normalized_default,
            values=normalized_values,
            multi=multi,
            description=description,
            when=_as_condition(when),
        )
    )


def depends_on(
    spec: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
    type: Union[str, Sequence[str]] = ("build", "link"),
) -> DependencyDecl:
    """Declare a dependency (possibly conditional, possibly on a virtual)."""
    dependency_spec = spec if isinstance(spec, Spec) else parse_spec(spec)
    if dependency_spec.name is None:
        raise PackageError(f"depends_on() requires a named spec, got {spec!r}")
    if isinstance(type, str):
        type = (type,)
    return _push(
        DependencyDecl(spec=dependency_spec, when=_as_condition(when), type=tuple(type))
    )


def conflicts(
    spec: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
    msg: str = "",
) -> ConflictDecl:
    """Declare a configuration this package is known not to build in."""
    conflict_spec = spec if isinstance(spec, Spec) else parse_spec(spec)
    return _push(ConflictDecl(spec=conflict_spec, when=_as_condition(when), msg=msg))


def provides(
    virtual: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
) -> ProvidesDecl:
    """Declare that this package provides a virtual package (API)."""
    virtual_spec = virtual if isinstance(virtual, Spec) else parse_spec(virtual)
    if virtual_spec.name is None:
        raise PackageError(f"provides() requires a named spec, got {virtual!r}")
    return _push(ProvidesDecl(virtual=virtual_spec, when=_as_condition(when)))
