"""Parser for the spec sigil syntax (Table I of the paper).

Supported sigils::

    hdf5                      package name
    @1.10.2   @1.0.7:  @:1.2  version constraints
    %gcc      %gcc@10.3.1     compiler (and compiler version)
    +mpi      ~mpi            boolean variants on / off
    api=default               key=value variants
    os=rhel7  target=skylake  special key=value attributes
    ^zlib@1.2.8:              constraints on a (transitive) dependency

Anonymous specs (used in ``when=`` clauses and ``conflicts``) omit the package
name and start directly with a sigil, e.g. ``"+mpi"`` or ``"@1.1.0:"``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.spack.errors import SpecSyntaxError, VersionError
from repro.spack.spec import Spec, normalize_variant_value
from repro.spack.version import parse_version_constraint

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.\-]*")
_VERSION_RE = re.compile(r"[A-Za-z0-9_.\-,:]+")
_VALUE_RE = re.compile(r"[A-Za-z0-9_.\-,:*+~/]+")


class _SpecLexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_whitespace(self):
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def take(self, pattern: re.Pattern, what: str) -> str:
        match = pattern.match(self.text, self.pos)
        if not match:
            raise SpecSyntaxError(
                f"expected {what} at position {self.pos} in {self.text!r}"
            )
        self.pos = match.end()
        return match.group(0)


def parse_spec(text: str) -> Spec:
    """Parse a single spec string (possibly with ``^dependency`` constraints)."""
    if not text or not text.strip():
        raise SpecSyntaxError(f"empty spec string: {text!r}")
    specs = parse_specs(text)
    if len(specs) != 1:
        raise SpecSyntaxError(f"expected exactly one spec in {text!r}, found {len(specs)}")
    return specs[0]


def parse_specs(text: str) -> List[Spec]:
    """Parse a whitespace-separated list of specs (like a command line).

    Sigils that follow a name without whitespace bind to it; a new spec starts
    at a bare name that is not preceded by a sigil.  ``^dep`` constraints are
    attached to the *root* spec currently being parsed (Spack semantics).
    """
    lexer = _SpecLexer(text)
    roots: List[Spec] = []
    current_root: Optional[Spec] = None
    current_node: Optional[Spec] = None

    def ensure_node(anonymous_ok: bool = True) -> Spec:
        nonlocal current_root, current_node
        if current_node is None:
            current_node = Spec()
            current_root = current_node
            roots.append(current_node)
        return current_node

    while True:
        lexer.skip_whitespace()
        if lexer.eof():
            break
        char = lexer.peek()

        if char == "^":
            lexer.pos += 1
            lexer.skip_whitespace()
            if current_root is None:
                raise SpecSyntaxError(f"dangling '^' in {text!r}")
            name = lexer.take(_NAME_RE, "a dependency name")
            dependency = current_root.dependencies.get(name)
            if dependency is None:
                dependency = Spec(name=name)
                current_root.dependencies[name] = dependency
            current_node = dependency
            continue

        if char == "@":
            lexer.pos += 1
            node = ensure_node()
            constraint = lexer.take(_VERSION_RE, "a version constraint")
            node.versions = node.versions.constrain(_parse_versions(constraint, text))
            continue

        if char == "%":
            lexer.pos += 1
            node = ensure_node()
            name = lexer.take(_NAME_RE, "a compiler name")
            if node.compiler is not None and node.compiler != name:
                raise SpecSyntaxError(f"two compilers for one spec in {text!r}")
            node.compiler = name
            if lexer.peek() == "@":
                lexer.pos += 1
                constraint = lexer.take(_VERSION_RE, "a compiler version")
                node.compiler_versions = node.compiler_versions.constrain(
                    _parse_versions(constraint, text)
                )
            continue

        if char in "+~":
            lexer.pos += 1
            node = ensure_node()
            name = lexer.take(_NAME_RE, "a variant name")
            if name in node.variants:
                raise SpecSyntaxError(
                    f"variant {name!r} assigned twice on one node in {text!r}"
                )
            node.variants[name] = "true" if char == "+" else "false"
            continue

        if _NAME_RE.match(char):
            word = lexer.take(_NAME_RE, "a name")
            if lexer.peek() == "=":
                lexer.pos += 1
                value = lexer.take(_VALUE_RE, "a value")
                node = ensure_node()
                _assign_keyvalue(node, word, value, text)
                continue
            # A bare word: the name of a (new) spec.
            if current_node is None or current_node.name is not None or current_node is not current_root:
                # start a new root spec
                current_node = Spec(name=word)
                current_root = current_node
                roots.append(current_node)
            else:
                current_node.name = word
            continue

        raise SpecSyntaxError(f"unexpected character {char!r} at position {lexer.pos} in {text!r}")

    return roots


def _parse_versions(constraint: str, text: str):
    """Parse one ``@...`` constraint, surfacing malformed input as a parse
    error (the version layer's :class:`VersionError` is an internal detail a
    caller feeding raw user strings should never see)."""
    try:
        return parse_version_constraint(constraint)
    except VersionError as exc:
        raise SpecSyntaxError(
            f"bad version constraint {constraint!r} in {text!r}: {exc}"
        ) from exc


def _assign_keyvalue(node: Spec, key: str, value: str, text: str = ""):
    """Fold one ``key=value`` sigil into ``node``.

    Duplicate assignments on the same node (``target=`` twice, ``+shared``
    then ``shared=false``, ``threads=none threads=openmp``) are rejected as
    syntax errors rather than silently last-one-wins: a user joining spec
    fragments almost certainly meant something else, and real Spack rejects
    them too.
    """
    where = f" in {text!r}" if text else ""
    if key == "target":
        if node.target is not None:
            raise SpecSyntaxError(f"'target' assigned twice on one node{where}")
        node.target = value
    elif key == "os":
        if node.os is not None:
            raise SpecSyntaxError(f"'os' assigned twice on one node{where}")
        node.os = value
    elif key == "arch":
        # arch=<platform>-<os>-<target>
        parts = value.split("-")
        if len(parts) != 3:
            raise SpecSyntaxError(f"arch must look like linux-rhel7-skylake, got {value!r}")
        if node.os is not None or node.target is not None:
            raise SpecSyntaxError(f"'arch' conflicts with an earlier os/target{where}")
        node.os = parts[1]
        node.target = parts[2]
    else:
        if key in node.variants:
            raise SpecSyntaxError(
                f"variant {key!r} assigned twice on one node{where}"
            )
        if "," in value:
            node.variants[key] = normalize_variant_value(tuple(value.split(",")))
        else:
            node.variants[key] = normalize_variant_value(value)
