"""Microarchitecture targets, operating systems, and platforms.

The paper's optimization criteria prefer specific microarchitecture targets
(e.g. ``skylake`` with AVX-512) over generic ones (``x86_64``), constrained by
what the chosen compiler can generate code for.  This module provides a small
archspec-like model:

* every :class:`Target` belongs to a *family* (``x86_64``, ``ppc64le``,
  ``aarch64``) and has a *generation* index within the family;
* newer/more specific targets get **lower weights** (more preferred);
* :class:`Platform` bundles the host family, the available targets, the
  available operating systems, and the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spack.errors import SpackError


@dataclass(frozen=True)
class Target:
    """One microarchitecture target."""

    name: str
    family: str
    generation: int  # 0 = the generic family target; larger = newer/more featureful
    features: Tuple[str, ...] = ()

    def __str__(self):
        return self.name


# The known targets, roughly mirroring archspec's x86_64 / ppc64le / aarch64
# families.  Order within a family matters: it defines the generation index.
_TARGET_FAMILIES: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {
    "x86_64": [
        ("x86_64", ()),
        ("core2", ("ssse3",)),
        ("nehalem", ("sse4_2",)),
        ("sandybridge", ("avx",)),
        ("ivybridge", ("avx", "f16c")),
        ("haswell", ("avx2",)),
        ("broadwell", ("avx2", "adx")),
        ("skylake", ("avx2", "clflushopt")),
        ("skylake_avx512", ("avx512f",)),
        ("cascadelake", ("avx512f", "avx512_vnni")),
        ("icelake", ("avx512f", "avx512_vbmi2")),
    ],
    "ppc64le": [
        ("ppc64le", ()),
        ("power8le", ("vsx",)),
        ("power9le", ("vsx", "darn")),
    ],
    "aarch64": [
        ("aarch64", ()),
        ("thunderx2", ("asimd",)),
        ("a64fx", ("sve",)),
        ("neoverse_n1", ("asimd", "lse")),
        ("neoverse_v1", ("sve", "bf16")),
    ],
}


class TargetRegistry:
    """All known targets, indexed by name and by family."""

    def __init__(self, families: Optional[Dict[str, List[Tuple[str, Tuple[str, ...]]]]] = None):
        families = families or _TARGET_FAMILIES
        self._targets: Dict[str, Target] = {}
        self._families: Dict[str, List[Target]] = {}
        for family, entries in families.items():
            targets = []
            for generation, (name, features) in enumerate(entries):
                target = Target(name=name, family=family, generation=generation, features=features)
                self._targets[name] = target
                targets.append(target)
            self._families[family] = targets

    def __contains__(self, name: str) -> bool:
        return name in self._targets

    def get(self, name: str) -> Target:
        try:
            return self._targets[name]
        except KeyError:
            raise SpackError(f"unknown target: {name!r}") from None

    def family(self, family: str) -> List[Target]:
        try:
            return list(self._families[family])
        except KeyError:
            raise SpackError(f"unknown target family: {family!r}") from None

    def families(self) -> List[str]:
        return list(self._families)

    def all_targets(self) -> List[Target]:
        return list(self._targets.values())

    def is_family(self, name: str) -> bool:
        return name in self._families

    def weights_for(self, family: str, best: Optional[str] = None) -> Dict[str, int]:
        """Weights for the targets of one family: 0 = most preferred.

        ``best`` is the newest target supported by the host (the platform's
        default); anything newer than the host cannot run and is excluded.
        """
        targets = self.family(family)
        if best is not None:
            best_generation = self.get(best).generation
            targets = [t for t in targets if t.generation <= best_generation]
        ordered = sorted(targets, key=lambda t: -t.generation)
        return {target.name: weight for weight, target in enumerate(ordered)}


TARGETS = TargetRegistry()


@dataclass(frozen=True)
class OperatingSystem:
    """An operating system release, e.g. ``rhel7`` or ``ubuntu20.04``."""

    name: str

    def __str__(self):
        return self.name


KNOWN_OPERATING_SYSTEMS = (
    "rhel7",
    "rhel8",
    "centos7",
    "centos8",
    "ubuntu18.04",
    "ubuntu20.04",
    "ubuntu22.04",
)


@dataclass
class Platform:
    """The host machine: family, best target, available OSs, defaults.

    The two evaluation machines in the paper map naturally onto platforms::

        quartz = Platform("linux", family="x86_64", default_target="broadwell",
                          default_os="rhel7")
        lassen = Platform("linux", family="ppc64le", default_target="power9le",
                          default_os="rhel7")
    """

    name: str = "linux"
    family: str = "x86_64"
    default_target: str = "skylake"
    default_os: str = "rhel7"
    operating_systems: Tuple[str, ...] = KNOWN_OPERATING_SYSTEMS
    registry: TargetRegistry = field(default_factory=lambda: TARGETS)

    def __post_init__(self):
        if self.default_target not in self.registry:
            raise SpackError(f"unknown default target {self.default_target!r}")
        if self.registry.get(self.default_target).family != self.family:
            raise SpackError(
                f"default target {self.default_target!r} is not in family {self.family!r}"
            )
        if self.default_os not in self.operating_systems:
            raise SpackError(f"default OS {self.default_os!r} not in {self.operating_systems}")

    # -- targets ------------------------------------------------------------------

    def targets(self) -> List[Target]:
        """Targets this platform can execute (host family, up to the default)."""
        best_generation = self.registry.get(self.default_target).generation
        return [
            target
            for target in self.registry.family(self.family)
            if target.generation <= best_generation
        ]

    def target_weights(self) -> Dict[str, int]:
        """0 = most preferred (the platform's best target)."""
        return self.registry.weights_for(self.family, best=self.default_target)

    def generic_target(self) -> Target:
        return self.registry.family(self.family)[0]

    # -- operating systems ----------------------------------------------------------

    def os_weights(self) -> Dict[str, int]:
        """0 for the default OS, increasing for the others."""
        weights = {self.default_os: 0}
        weight = 1
        for name in self.operating_systems:
            if name not in weights:
                weights[name] = weight
                weight += 1
        return weights


def default_platform() -> Platform:
    """An x86_64 'Quartz-like' platform used throughout tests and examples."""
    return Platform(
        name="linux",
        family="x86_64",
        default_target="skylake",
        default_os="rhel7",
    )


def lassen_platform() -> Platform:
    """A ppc64le 'Lassen-like' platform (Power9 + rhel7)."""
    return Platform(
        name="linux",
        family="ppc64le",
        default_target="power9le",
        default_os="rhel7",
    )
