"""Exception hierarchy for the Spack-like layer.

Also home to :class:`ConstraintProvenance`, the unit of the structured unsat
explanation carried by :class:`UnsatisfiableSpecError`.  It lives here — the
leafmost module of the layer — because the encoder (which records it), the
MUS extractor (which filters it), and the service (which serializes it) all
already import :mod:`repro.spack.errors`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ConstraintProvenance:
    """Where one retractable program constraint came from.

    One instance per *suspect group*: the set of ground facts that jointly
    activate a single source-level constraint (a ``conflicts`` directive, a
    ``depends_on`` condition plus its imposed constraints, or one requested
    input spec).  ``facts`` holds those fact tuples so the MUS extractor can
    map the group back onto ground atoms; the remaining fields are the
    human-readable rendering.
    """

    kind: str  #: "conflict" | "depends_on" | "requested"
    package: str
    directive: str
    when: str = ""
    facts: Tuple[Tuple, ...] = field(default=(), compare=False)

    def describe(self) -> str:
        if self.when:
            return f'{self.package}: {self.directive} when="{self.when}"'
        return f"{self.package}: {self.directive}"

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "package": self.package,
            "directive": self.directive,
            "when": self.when,
            "facts": [list(fact) for fact in self.facts],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ConstraintProvenance":
        return cls(
            kind=data.get("kind", ""),
            package=data.get("package", ""),
            directive=data.get("directive", ""),
            when=data.get("when", ""),
            facts=tuple(tuple(fact) for fact in data.get("facts", ())),
        )


class SpackError(Exception):
    """Base class for all errors raised by :mod:`repro.spack`."""


class SpecSyntaxError(SpackError):
    """Raised when a spec string cannot be parsed."""


class VersionError(SpackError):
    """Raised for malformed versions or version ranges."""


class PackageError(SpackError):
    """Raised for malformed package definitions."""


class UnknownPackageError(PackageError):
    """Raised when a package name cannot be found in any repository."""

    def __init__(self, name, repo=None):
        self.name = name
        message = f"Package '{name}' not found"
        if repo is not None:
            message += f" in repository '{repo}'"
        super().__init__(message)


class UnsatisfiableSpecError(SpackError):
    """Raised when no valid concretization exists (or, for the original
    greedy concretizer, when it *fails to find* one — the incompleteness the
    paper discusses in Section III-C).

    ``explanation`` is the minimal conflict core: an ordered list of
    :class:`ConstraintProvenance` naming the source-level constraints that
    are jointly unsatisfiable, each of which is individually necessary
    (relaxing any one of them yields a satisfiable program).  Empty when no
    diagnosis was computed or when the program is unsatisfiable for reasons
    outside the retractable constraints.  ``specs`` are the requested input
    specs, as strings.
    """

    def __init__(
        self,
        message: str = "",
        explanation: Optional[Sequence[ConstraintProvenance]] = None,
        specs: Optional[Sequence[str]] = None,
    ):
        super().__init__(message)
        self.explanation: List[ConstraintProvenance] = list(explanation or [])
        self.specs: List[str] = list(specs or [])

    def __reduce__(self):
        # default exception pickling drops keyword state; worker-pool unsat
        # results must round-trip the core intact
        return (
            self.__class__,
            (str(self), list(self.explanation), list(self.specs)),
        )

    def core(self) -> List[str]:
        """The conflict core as human-readable lines."""
        return [provenance.describe() for provenance in self.explanation]


class ConflictError(UnsatisfiableSpecError):
    """Raised when a conflict directive is violated."""


class DuplicateDependencyError(SpackError):
    """Raised when a spec constrains the same dependency inconsistently."""
