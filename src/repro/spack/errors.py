"""Exception hierarchy for the Spack-like layer."""


class SpackError(Exception):
    """Base class for all errors raised by :mod:`repro.spack`."""


class SpecSyntaxError(SpackError):
    """Raised when a spec string cannot be parsed."""


class VersionError(SpackError):
    """Raised for malformed versions or version ranges."""


class PackageError(SpackError):
    """Raised for malformed package definitions."""


class UnknownPackageError(PackageError):
    """Raised when a package name cannot be found in any repository."""

    def __init__(self, name, repo=None):
        self.name = name
        message = f"Package '{name}' not found"
        if repo is not None:
            message += f" in repository '{repo}'"
        super().__init__(message)


class UnsatisfiableSpecError(SpackError):
    """Raised when no valid concretization exists (or, for the original
    greedy concretizer, when it *fails to find* one — the incompleteness the
    paper discusses in Section III-C)."""


class ConflictError(UnsatisfiableSpecError):
    """Raised when a conflict directive is violated."""


class DuplicateDependencyError(SpackError):
    """Raised when a spec constrains the same dependency inconsistently."""
