"""Synthetic repository generation for scaling experiments.

The builtin catalog is a few hundred packages; the paper's experiments run
against the full Spack repository (6 000+ packages) and the E4S buildcache
(60 000+ installed hashes).  This module generates synthetic packages with a
controllable size and dependency fan-out so the benchmark harness can sweep
problem sizes far beyond the hand-written catalog while keeping the same
structural features:

* a layered DAG (no cycles) with configurable out-degree;
* a fraction of packages that can reach the ``mpi`` virtual (reproducing the
  two-cluster structure of Figures 7a–7c);
* conditional dependencies, variants, and occasional conflicts;
* optional **seeded unsat injection** (``unsat_packages``): poisoned
  ``synth-unsat-*`` packages whose ``conflicts`` directives are jointly
  unsatisfiable but individually removable, with the planted ground-truth
  core recorded in :attr:`SyntheticRepoBuilder.planted` so the unsat
  scenario harness can assert that the explainer's extracted minimal
  conflict core equals exactly what was planted.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.spack.directives import conflicts, depends_on, provides, variant, version
from repro.spack.package import Package, PackageBase, PackageMeta
from repro.spack.repo import Repository


def _make_package_class(
    name: str,
    versions: Sequence[str],
    variants: Sequence[Tuple[str, bool]],
    dependencies: Sequence[Tuple[str, Optional[str]]],
    provided: Sequence[str] = (),
    conflict_specs: Sequence[str] = (),
) -> Type[PackageBase]:
    """Create one synthetic package class through the normal directive machinery."""
    for version_string in versions:
        version(version_string)
    for variant_name, default in variants:
        variant(variant_name, default=default, description=f"synthetic variant {variant_name}")
    for dependency, when in dependencies:
        depends_on(dependency, when=when)
    for virtual in provided:
        provides(virtual)
    for conflict_spec in conflict_specs:
        conflicts(conflict_spec)
    cls = PackageMeta(f"Synthetic_{name.replace('-', '_')}", (Package,), {"name": name})
    # Register the class as a real module attribute: dynamically created
    # classes are only picklable when ``pickle`` can resolve them by
    # ``__module__.__qualname__``, and the persistent ground cache pickles
    # base programs whose spec graphs reference these classes.  Same-name
    # rebuilds (same seed) simply re-register an equivalent class.
    cls.__module__ = __name__
    cls.__qualname__ = cls.__name__
    setattr(sys.modules[__name__], cls.__name__, cls)
    return cls


@dataclass(frozen=True)
class PlantedConflict:
    """Ground truth for one poisoned package's injected unsatisfiability.

    ``conflict_specs`` are the raw directive arguments (usable as
    ``omit_planted`` entries to relax one member), ``directives`` the
    rendered directive strings — exactly what
    :class:`~repro.spack.errors.ConstraintProvenance.directive` reports for
    them, so scenario tests compare extracted cores against planted ones
    string-for-string.
    """

    package: str
    conflict_specs: Tuple[str, ...]
    directives: Tuple[str, ...]


class SyntheticRepoBuilder:
    """Generates a layered synthetic repository.

    Parameters
    ----------
    num_packages:
        total number of synthetic packages (excluding the MPI providers)
    max_dependencies:
        maximum out-degree of a package (dependencies go to lower layers only,
        so the result is a DAG)
    layers:
        number of layers; packages in layer 0 have no dependencies
    mpi_fraction:
        fraction of packages (in the upper half of the layering) that depend
        on the ``mpi`` virtual — these form the "can reach MPI" cluster
    conditional_fraction:
        fraction of dependency edges guarded by a variant condition
    seed:
        RNG seed (generation is fully deterministic for a given seed)
    unsat_packages:
        number of poisoned ``synth-unsat-NNNN`` packages to plant.  Each
        carries ``unsat_conflicts`` versions and one ``conflicts("@V")``
        directive per version: every version is forbidden, so concretizing
        the package is UNSAT, and removing any *single* directive frees its
        version — the directives are a minimal unsatisfiable set by
        construction.  Ground truth lands in :attr:`planted` after
        :meth:`build`.  Planting consumes no RNG draws, so the regular
        catalog is bit-identical with the knob on or off.
    unsat_conflicts:
        size of each planted core (>= 2)
    omit_planted:
        ``(package, conflict_spec)`` pairs to *skip* at plant time — the
        minimality oracle: rebuilding a scenario with one planted member
        omitted must flip the package to SAT.  Omission consumes no RNG
        draws either.
    """

    def __init__(
        self,
        num_packages: int = 200,
        max_dependencies: int = 5,
        layers: int = 8,
        mpi_fraction: float = 0.35,
        conditional_fraction: float = 0.3,
        num_providers: int = 2,
        seed: int = 42,
        unsat_packages: int = 0,
        unsat_conflicts: int = 2,
        omit_planted: Sequence[Tuple[str, str]] = (),
    ):
        self.num_packages = num_packages
        self.max_dependencies = max_dependencies
        self.layers = max(2, layers)
        self.mpi_fraction = mpi_fraction
        self.conditional_fraction = conditional_fraction
        self.num_providers = max(1, num_providers)
        self.random = random.Random(seed)
        self.unsat_packages = max(0, unsat_packages)
        self.unsat_conflicts = max(2, unsat_conflicts)
        self.omit_planted = frozenset(omit_planted)
        #: ground truth recorded by :meth:`build`: poisoned package name ->
        #: :class:`PlantedConflict`
        self.planted: Dict[str, PlantedConflict] = {}

    # ------------------------------------------------------------------

    def _package_name(self, index: int) -> str:
        return f"synth-{index:04d}"

    def _layer_of(self, index: int) -> int:
        return index * self.layers // max(1, self.num_packages)

    def build(self, name: str = "synthetic") -> Repository:
        repo = Repository(name=name)

        # MPI providers (layer 0, no dependencies).
        provider_names = [f"synth-mpi-{i}" for i in range(self.num_providers)]
        for provider in provider_names:
            cls = _make_package_class(
                provider,
                versions=["2.0.0", "1.0.0"],
                variants=[("shared", True)],
                dependencies=[],
                provided=["mpi"],
            )
            repo.add(cls)

        names = [self._package_name(i) for i in range(self.num_packages)]
        layers: Dict[int, List[str]] = {}
        for index, name_ in enumerate(names):
            layers.setdefault(self._layer_of(index), []).append(name_)

        for index, package_name in enumerate(names):
            layer = self._layer_of(index)
            versions = self._versions(index)
            variants = self._variants(index)
            dependencies: List[Tuple[str, Optional[str]]] = []

            if layer > 0:
                candidate_pool = [
                    other
                    for other_layer in range(layer)
                    for other in layers.get(other_layer, [])
                ]
                count = self.random.randint(0, min(self.max_dependencies, len(candidate_pool)))
                for dependency in self.random.sample(candidate_pool, count):
                    when = None
                    if variants and self.random.random() < self.conditional_fraction:
                        when = f"+{variants[0][0]}"
                    dependencies.append((dependency, when))

            # upper-layer packages may depend on MPI (two-cluster structure)
            if layer >= self.layers // 2 and self.random.random() < self.mpi_fraction:
                dependencies.append(("mpi", None))

            conflict_specs = []
            if self.random.random() < 0.05:
                conflict_specs.append("%intel")

            cls = _make_package_class(
                package_name,
                versions=versions,
                variants=variants,
                dependencies=dependencies,
                conflict_specs=conflict_specs,
            )
            repo.add(cls)

        self._plant_unsat(repo, names)
        repo.set_provider_preference("mpi", provider_names)
        return repo

    def _plant_unsat(self, repo: Repository, names: Sequence[str]):
        """Append the poisoned packages (deterministic, RNG-free)."""
        self.planted = {}
        for index in range(self.unsat_packages):
            package_name = f"synth-unsat-{index:04d}"
            versions = [f"{self.unsat_conflicts - j}.0.0" for j in range(self.unsat_conflicts)]
            conflict_specs = [f"@{version_string}" for version_string in versions]
            kept = [
                spec
                for spec in conflict_specs
                if (package_name, spec) not in self.omit_planted
            ]
            # one RNG-free dependency into the regular catalog, so planted
            # scenarios exercise real grounding work, not toy islands
            dependencies: List[Tuple[str, Optional[str]]] = []
            if names:
                dependencies.append((names[(index * 7) % len(names)], None))
            cls = _make_package_class(
                package_name,
                versions=versions,
                variants=[],
                dependencies=dependencies,
                conflict_specs=kept,
            )
            repo.add(cls)
            self.planted[package_name] = PlantedConflict(
                package=package_name,
                conflict_specs=tuple(kept),
                directives=tuple(d.directive_string() for d in cls.conflict_decls),
            )

    # ------------------------------------------------------------------

    def _versions(self, index: int) -> List[str]:
        count = 1 + (index % 4)
        major = 1 + index % 3
        return [f"{major}.{minor}.0" for minor in range(count, 0, -1)]

    def _variants(self, index: int) -> List[Tuple[str, bool]]:
        count = index % 3
        return [(f"opt{i}", bool((index + i) % 2)) for i in range(count)]


def generate_repository(
    num_packages: int = 200,
    max_dependencies: int = 5,
    seed: int = 42,
    **kwargs,
) -> Repository:
    """Convenience wrapper around :class:`SyntheticRepoBuilder`."""
    builder = SyntheticRepoBuilder(
        num_packages=num_packages, max_dependencies=max_dependencies, seed=seed, **kwargs
    )
    return builder.build()
