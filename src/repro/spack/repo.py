"""Package repositories: registries of package classes plus virtual providers.

The repository answers the questions the concretizer needs:

* ``get(name)`` — the package class for a name;
* ``providers_for(virtual)`` — which packages can stand in for a virtual
  package such as ``mpi``, ``blas`` or ``lapack``;
* ``possible_dependencies(name)`` — the *possible dependency set*: every
  package reachable through any ``depends_on`` directive (regardless of its
  ``when=`` condition), with virtuals expanded to all their providers.  This
  is the quantity on the x-axis of Figures 7a–7c in the paper, because it
  measures the size of the fact/ground-program the solver has to consider
  rather than the size of the final answer.

Two flavors exist:

* :class:`Repository` — the monolithic registry: one namespace, one content
  hash over the whole catalog, so *any* package edit invalidates every cached
  artifact derived from it;
* :class:`ShardedRepository` — the same API composed from
  :class:`RepositoryShard` pieces (one shard per builtin module for the E4S
  catalog).  Every shard carries its own stable content hash
  (:meth:`RepositoryShard.content_hash`, memoized against a mutation
  generation), and the repository-level hash is a Merkle-style combination of
  them, so callers above (the concretization session's layered base grounding
  and its persistent caches, see ``docs/CACHING.md``) can invalidate at shard
  granularity: editing one shard re-grounds and re-persists only that
  shard's fact layer.

Two refinements keep that one-layer property under real-world churn:

* **multi-catalog composition** — :meth:`ShardedRepository.compose` stacks
  several catalogs (e.g. a user repository over the builtin one) behind one
  repository: earlier arguments shadow later ones name-wise, while their
  shards layer *after* the base catalog's, so editing a user package
  re-grounds exactly one layer;
* **dirty-shard reordering** — shards mutated after attach sink to the end
  of the grounding chain (:meth:`ShardedRepository.layering_shards`), so
  repeated edits to any shard — even a middle one — converge to one-layer
  re-grounds.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.spack.errors import PackageError, UnknownPackageError
from repro.spack.package import PackageBase
from repro.spack.spec import Spec


def describe_package(cls: Type[PackageBase]) -> Tuple:
    """A stable, hashable description of one package class.

    Covers everything the concretizer's fact encoding can see — versions,
    variants, dependencies, conflicts, provided virtuals — so two classes
    with equal descriptions produce identical facts, and any metadata edit
    changes the description.  Shard and repository content hashes are
    digests over these descriptions.
    """
    versions = tuple(
        (str(version), decl.deprecated, decl.preferred)
        for version, decl in sorted(cls.versions.items(), key=lambda kv: str(kv[0]))
    )
    variants = tuple(
        (name, str(decl.default), tuple(decl.values), decl.multi, str(decl.when))
        for name, decl in sorted(cls.variants.items())
    )
    dependencies = tuple(
        sorted((str(dep.spec), str(dep.when)) for dep in cls.dependencies)
    )
    conflicts = tuple(
        sorted((str(c.spec), str(c.when)) for c in cls.conflict_decls)
    )
    provided = tuple(
        sorted((str(p.virtual), str(p.when)) for p in cls.provided)
    )
    return (cls.name, versions, variants, dependencies, conflicts, provided)


def _digest(description: object) -> str:
    return hashlib.sha256(repr(description).encode("utf-8")).hexdigest()[:32]


class Repository:
    """A named collection of package classes."""

    def __init__(self, name: str = "builtin", packages: Iterable[Type[PackageBase]] = ()):
        self.name = name
        self._packages: Dict[str, Type[PackageBase]] = {}
        self._providers: Dict[str, List[str]] = {}
        self._provider_preferences: Dict[str, List[str]] = {}
        for cls in packages:
            self.add(cls)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def add(self, cls: Type[PackageBase]) -> Type[PackageBase]:
        """Register a package class (usable as a decorator).

        The class itself is left untouched: a package class may be registered
        in any number of repositories (or shards, or test fixtures) without
        them corrupting each other through a class-level back-pointer.
        """
        name = cls.name
        if name in self._packages and self._packages[name] is not cls:
            raise PackageError(f"duplicate package {name!r} in repository {self.name!r}")
        self._packages[name] = cls
        for virtual in cls.provided_virtuals():
            providers = self._providers.setdefault(virtual, [])
            if name not in providers:
                providers.append(name)
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self):
        return iter(sorted(self._packages))

    def get(self, name: str) -> Type[PackageBase]:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name, self.name) from None

    def all_package_names(self) -> List[str]:
        return sorted(self._packages)

    def exists(self, name: str) -> bool:
        return name in self._packages

    # ------------------------------------------------------------------
    # Virtual packages
    # ------------------------------------------------------------------

    def is_virtual(self, name: str) -> bool:
        """A name is virtual when no real package has it but providers do."""
        return name not in self._packages and name in self._providers

    def virtuals(self) -> List[str]:
        return sorted(v for v in self._providers if v not in self._packages)

    def providers_for(self, virtual: str) -> List[str]:
        """Provider package names for a virtual, in preference order."""
        providers = self._providers.get(virtual, [])
        preferences = self._provider_preferences.get(virtual)
        if not preferences:
            return sorted(providers)
        ordered = [p for p in preferences if p in providers]
        ordered += sorted(p for p in providers if p not in ordered)
        return ordered

    def set_provider_preference(self, virtual: str, providers: Sequence[str]):
        """Set the preferred provider order for a virtual (user configuration)."""
        self._provider_preferences[virtual] = list(providers)

    def provider_weights(self, virtual: str) -> Dict[str, int]:
        """0 = most preferred provider (criterion 4/7 in Table II)."""
        return {name: weight for weight, name in enumerate(self.providers_for(virtual))}

    # ------------------------------------------------------------------
    # Content hashing (cache keys for the concretization session layers)
    # ------------------------------------------------------------------

    def providers_digest(self) -> str:
        """Digest of the full virtual/provider/preference tables.

        Part of every layer cache key of a sharded session: provider
        *weights* enumerate all registered providers of a virtual, so they
        can shift when any shard (even one outside the current possible-
        package set) gains or loses a provider, or when preferences change.
        """
        description = tuple(
            (virtual, tuple(sorted(self.provider_weights(virtual).items())))
            for virtual in sorted(self._providers)
        )
        return _digest(description)

    def content_hash(self) -> str:
        """A stable digest of everything the fact encoding reads from here.

        Two repositories with equal content hashes produce identical
        spec-independent fact layers, so grounded programs and solve-cache
        entries keyed on the hash may be shared; any package or preference
        edit changes it.  The monolithic flavor hashes the whole catalog;
        :meth:`ShardedRepository.content_hash` overrides this with a
        Merkle-style combination of per-shard hashes.
        """
        packages = tuple(
            describe_package(self._packages[name]) for name in sorted(self._packages)
        )
        return _digest((packages, self.providers_digest()))

    # ------------------------------------------------------------------
    # Possible dependencies (Figures 7a-7c x-axis)
    # ------------------------------------------------------------------

    def direct_possible_dependencies(self, name: str, expand_virtuals: bool = True) -> Set[str]:
        """Names a package can directly depend on, conditions ignored."""
        cls = self.get(name)
        result: Set[str] = set()
        for dependency in cls.dependencies:
            dep_name = dependency.name
            if expand_virtuals and self.is_virtual(dep_name):
                result.update(self.providers_for(dep_name))
            else:
                result.add(dep_name)
        return result

    def possible_dependencies(
        self,
        *names: str,
        expand_virtuals: bool = True,
        include_roots: bool = True,
        missing: Optional[Set[str]] = None,
    ) -> Set[str]:
        """The transitive closure of :meth:`direct_possible_dependencies`.

        Unknown packages encountered along the way are recorded in ``missing``
        (if given) and otherwise ignored, mirroring Spack's behaviour for
        packages referenced but not present in the repository.
        """
        visited: Set[str] = set()
        frontier: List[str] = list(names)
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            if not self.exists(current):
                if self.is_virtual(current):
                    if expand_virtuals:
                        frontier.extend(self.providers_for(current))
                    else:
                        visited.add(current)
                    continue
                if missing is not None:
                    missing.add(current)
                continue
            visited.add(current)
            for dependency in self.direct_possible_dependencies(current, expand_virtuals):
                if dependency not in visited:
                    frontier.append(dependency)
        if not include_roots:
            visited -= set(names)
        return visited

    def possible_dependency_count(self, name: str) -> int:
        """Size of the possible-dependency set excluding the package itself."""
        return len(self.possible_dependencies(name, include_roots=False) - {name})

    # ------------------------------------------------------------------
    # Dependency graph export (used for the Figure 1 style E4S graph)
    # ------------------------------------------------------------------

    def dependency_edges(self, expand_virtuals: bool = True) -> List[Tuple[str, str]]:
        """All (package, possible dependency) edges in the repository."""
        edges: List[Tuple[str, str]] = []
        for name in self:
            for dependency in sorted(self.direct_possible_dependencies(name, expand_virtuals)):
                edges.append((name, dependency))
        return edges


class RepositoryShard:
    """One independently hashed slice of a sharded repository.

    A shard is a named set of package classes with its own stable content
    hash, memoized against a mutation generation so repeated hashing is free
    and any :meth:`add` transparently refreshes it.  Shards are the unit of
    cache invalidation above the repository: the concretization session
    grounds one fact layer per shard and keys it on the shard hash, so
    editing a package re-grounds (and re-persists) only the owning shard's
    layer.

    A shard may live standalone (e.g. in tests) or attached to a
    :class:`ShardedRepository`; attached shards forward every registration to
    the owner so the composed lookup tables can never drift out of sync.
    """

    def __init__(self, name: str, packages: Iterable[Type[PackageBase]] = ()):
        self.name = name
        self._packages: Dict[str, Type[PackageBase]] = {}
        self._generation = 0
        self._hash_cache: Optional[Tuple[int, str]] = None
        self._owner: Optional["ShardedRepository"] = None
        for cls in packages:
            self.add(cls)

    def add(self, cls: Type[PackageBase]) -> Type[PackageBase]:
        """Register a package class in this shard (usable as a decorator)."""
        name = cls.name
        existing = self._packages.get(name)
        if existing is cls:
            return cls
        if existing is not None:
            raise PackageError(f"duplicate package {name!r} in shard {self.name!r}")
        if self._owner is not None:
            self._owner._register(cls, self)
        self._packages[name] = cls
        self._generation += 1
        if self._owner is not None:
            # a post-attach mutation: tell the owner so dirty-shard
            # reordering can sink this shard to the end of the layer chain
            self._owner._note_edit(self)
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __iter__(self):
        return iter(sorted(self._packages))

    def __len__(self) -> int:
        return len(self._packages)

    def get(self, name: str) -> Type[PackageBase]:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name, self.name) from None

    def package_names(self) -> List[str]:
        return sorted(self._packages)

    def package_classes(self) -> List[Type[PackageBase]]:
        return [self._packages[name] for name in sorted(self._packages)]

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every registration (hash memo token)."""
        return self._generation

    def content_hash(self) -> str:
        """Digest of this shard's package metadata (memoized per generation).

        Stable across processes and across construction order: packages are
        hashed in sorted-name order through :func:`describe_package`.
        """
        cached = self._hash_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        value = _digest(
            tuple(describe_package(self._packages[name]) for name in sorted(self._packages))
        )
        self._hash_cache = (self._generation, value)
        return value

    def __repr__(self):
        return f"<RepositoryShard {self.name!r} with {len(self)} packages>"


class ShardedRepository(Repository):
    """A :class:`Repository` composed of independently hashed shards.

    Lookup behavior is exactly the base class's — the concretizer, encoder,
    and tests are agnostic to sharding — but registration is routed through
    :class:`RepositoryShard` objects, and :meth:`content_hash` becomes a
    Merkle-style combination of the per-shard hashes: cheap to recompute
    after an edit (only the touched shard re-hashes) and structured so the
    layers above can tell *which* shard changed (:meth:`shard_hashes`).

    Provider preferences remain repository-level configuration; they are
    folded into the composed hash (and into :meth:`providers_digest`), not
    into any shard's.
    """

    def __init__(self, name: str = "builtin", shards: Iterable[RepositoryShard] = ()):
        super().__init__(name=name)
        self._shards: "OrderedDict[str, RepositoryShard]" = OrderedDict()
        self._shard_of: Dict[str, str] = {}
        # dirty-shard bookkeeping: shard name -> monotone edit sequence for
        # every shard mutated *after* it was attached (see layering_shards)
        self._edit_counter = 0
        self._edit_seq: Dict[str, int] = {}
        #: (package, winning catalog, shadowed catalog) triples recorded by
        #: :meth:`compose` when a higher-precedence catalog overrides a name
        self.shadowed: List[Tuple[str, str, str]] = []
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------

    @property
    def shards(self) -> List[RepositoryShard]:
        """The shards in their stable layering order (insertion order)."""
        return list(self._shards.values())

    def shard(self, name: str) -> RepositoryShard:
        try:
            return self._shards[name]
        except KeyError:
            raise PackageError(
                f"repository {self.name!r} has no shard named {name!r}"
            ) from None

    def add_shard(self, shard: RepositoryShard) -> RepositoryShard:
        """Attach a shard, registering all of its packages."""
        if shard.name in self._shards:
            raise PackageError(
                f"duplicate shard {shard.name!r} in repository {self.name!r}"
            )
        if shard._owner is not None:
            raise PackageError(
                f"shard {shard.name!r} is already attached to a repository"
            )
        for cls in shard.package_classes():
            self._register(cls, shard)
        self._shards[shard.name] = shard
        shard._owner = self
        return shard

    def _register(self, cls: Type[PackageBase], shard: RepositoryShard):
        """Fold one shard registration into the composed lookup tables."""
        owner = self._shard_of.get(cls.name)
        if owner is not None and owner != shard.name:
            raise PackageError(
                f"package {cls.name!r} is already provided by shard {owner!r} "
                f"(cannot also register it in {shard.name!r})"
            )
        super().add(cls)
        self._shard_of[cls.name] = shard.name

    def add(
        self, cls: Type[PackageBase], shard: Optional[str] = None
    ) -> Type[PackageBase]:
        """Register a package class, routed into ``shard`` (default: the
        last shard, so generic ``repo.add(cls)`` callers keep working)."""
        if not self._shards:
            self.add_shard(RepositoryShard("default"))
        target = self._shards[shard] if shard is not None else self.shards[-1]
        return target.add(cls)

    def shard_of(self, package_name: str) -> RepositoryShard:
        """The shard owning ``package_name``."""
        try:
            return self._shards[self._shard_of[package_name]]
        except KeyError:
            raise UnknownPackageError(package_name, self.name) from None

    # ------------------------------------------------------------------
    # Dirty-shard reordering
    # ------------------------------------------------------------------

    def _note_edit(self, shard: RepositoryShard) -> None:
        """Record a post-attach mutation of ``shard``.

        Called by :meth:`RepositoryShard.add` on attached shards.  Edits at
        attach time (``add_shard``) are *not* edits: a freshly composed
        repository starts with every shard clean, in insertion order.
        """
        self._edit_counter += 1
        self._edit_seq[shard.name] = self._edit_counter

    def dirty_shards(self) -> List[str]:
        """Names of post-attach-edited shards, least recently edited first."""
        return sorted(self._edit_seq, key=self._edit_seq.__getitem__)

    def layering_shards(self) -> List[RepositoryShard]:
        """The shards in *grounding* order: clean first, dirty last.

        Clean shards keep their insertion order; shards edited after attach
        sink to the end of the chain, ordered by their last edit (most
        recently edited shard last).  Sessions ground the spec-independent
        base as a chain of per-shard layers cached per *prefix*, so putting
        the volatile shards at the end means repeated edits — even to a shard
        that started out in the middle of the chain — converge to re-grounding
        exactly one layer: the first edit re-grounds the reordered suffix
        once, and every later edit finds the whole clean prefix warm.

        :attr:`shards` keeps the stable insertion order (what
        :meth:`shard_hashes` and generic ``repo.add`` routing use); only the
        grounding chain follows this order.
        """
        shards = self.shards
        clean = [s for s in shards if s.name not in self._edit_seq]
        dirty = sorted(
            (s for s in shards if s.name in self._edit_seq),
            key=lambda s: self._edit_seq[s.name],
        )
        return clean + dirty

    # ------------------------------------------------------------------
    # Multi-catalog composition
    # ------------------------------------------------------------------

    @classmethod
    def compose(
        cls, *repositories: Repository, name: Optional[str] = None
    ) -> "ShardedRepository":
        """Stack several catalogs' shards behind one composed repository.

        Argument order is *precedence* order — ``compose(user_repo,
        builtin_repo)`` means the user catalog wins wherever both define a
        package name (the builtin class is omitted and recorded in
        :attr:`shadowed`).  Layering order is the reverse: base catalogs
        ground first and overlay shards sink to the end of the chain, so a
        session over the composed repository keys one ground layer per source
        shard and editing a *user* package re-grounds exactly one layer while
        every builtin layer replays from cache.

        Each source contributes fresh :class:`RepositoryShard` objects named
        ``<catalog>/<shard>`` (a flat :class:`Repository` contributes one
        ``<catalog>/packages`` shard), so composing never mutates or claims
        the source repositories and the same sources can be re-composed
        freely.  Provider preferences merge with the same precedence: an
        overlay's preference for a virtual replaces the base's.
        """
        if not repositories:
            raise PackageError("compose() needs at least one repository")
        winners: Dict[str, int] = {}
        for position, source in enumerate(repositories):
            for package in source.all_package_names():
                winners.setdefault(package, position)

        prefixes = []
        seen_prefixes: Dict[str, int] = {}
        for position, source in enumerate(repositories):
            prefix = source.name
            if prefix in seen_prefixes:
                prefix = f"{prefix}#{position}"
            seen_prefixes[prefix] = position
            prefixes.append(prefix)

        composed = cls(name=name or "+".join(prefixes))
        shadowed: List[Tuple[str, str, str]] = []
        # base catalogs first, overlays after, so overlay shards layer last
        for position in range(len(repositories) - 1, -1, -1):
            source = repositories[position]
            for shard_name, classes in _catalog_shards(source):
                kept = []
                for package_cls in classes:
                    if winners[package_cls.name] == position:
                        kept.append(package_cls)
                    else:
                        winner = repositories[winners[package_cls.name]]
                        shadowed.append((package_cls.name, winner.name, source.name))
                composed.add_shard(
                    RepositoryShard(f"{prefixes[position]}/{shard_name}", kept)
                )
        # overlay preferences override base ones per virtual
        for source in reversed(repositories):
            for virtual, providers in source._provider_preferences.items():
                composed.set_provider_preference(virtual, list(providers))
        composed.shadowed = sorted(shadowed)
        return composed

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def shard_hashes(self) -> Tuple[Tuple[str, str], ...]:
        """``(shard name, shard content hash)`` pairs in layering order."""
        return tuple((shard.name, shard.content_hash()) for shard in self.shards)

    def content_hash(self) -> str:
        """Merkle-style combination of shard hashes + provider tables.

        Editing one shard re-hashes only that shard (the others replay their
        memoized digests), and the composed value changes whenever any shard
        hash, the shard order, or the provider/preference tables change.
        """
        return _digest(("sharded", self.shard_hashes(), self.providers_digest()))

    def __repr__(self):
        return (
            f"<ShardedRepository {self.name!r} with {len(self)} packages "
            f"in {len(self._shards)} shards>"
        )


def _catalog_shards(
    source: Repository,
) -> List[Tuple[str, List[Type[PackageBase]]]]:
    """One ``(shard name, package classes)`` slice per layer of ``source``.

    A :class:`ShardedRepository` contributes its shards in grounding order
    (:meth:`ShardedRepository.layering_shards`, so dirty order survives
    composition); a flat :class:`Repository` contributes a single
    ``packages`` slice.
    """
    if isinstance(source, ShardedRepository):
        return [
            (shard.name, shard.package_classes())
            for shard in source.layering_shards()
        ]
    return [("packages", [source.get(n) for n in source.all_package_names()])]


# A process-wide default repository that the builtin packages register into.
_GLOBAL_REPO: Optional[Repository] = None


def builtin_repository(refresh: bool = False) -> Repository:
    """The builtin E4S-style repository (lazily constructed singleton).

    Sharded (one :class:`RepositoryShard` per builtin module) since the
    sharded-repository refactor, so sessions over it ground incrementally
    and invalidate per shard; the flat flavor remains available through
    :func:`repro.spack.builtin.build_repository`.
    """
    global _GLOBAL_REPO
    if _GLOBAL_REPO is None or refresh:
        from repro.spack.builtin import build_sharded_repository

        _GLOBAL_REPO = build_sharded_repository()
    return _GLOBAL_REPO
