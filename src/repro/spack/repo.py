"""Package repositories: registries of package classes plus virtual providers.

The repository answers the questions the concretizer needs:

* ``get(name)`` — the package class for a name;
* ``providers_for(virtual)`` — which packages can stand in for a virtual
  package such as ``mpi``, ``blas`` or ``lapack``;
* ``possible_dependencies(name)`` — the *possible dependency set*: every
  package reachable through any ``depends_on`` directive (regardless of its
  ``when=`` condition), with virtuals expanded to all their providers.  This
  is the quantity on the x-axis of Figures 7a–7c in the paper, because it
  measures the size of the fact/ground-program the solver has to consider
  rather than the size of the final answer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.spack.errors import PackageError, UnknownPackageError
from repro.spack.package import PackageBase
from repro.spack.spec import Spec


class Repository:
    """A named collection of package classes."""

    def __init__(self, name: str = "builtin", packages: Iterable[Type[PackageBase]] = ()):
        self.name = name
        self._packages: Dict[str, Type[PackageBase]] = {}
        self._providers: Dict[str, List[str]] = {}
        self._provider_preferences: Dict[str, List[str]] = {}
        for cls in packages:
            self.add(cls)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def add(self, cls: Type[PackageBase]) -> Type[PackageBase]:
        """Register a package class (usable as a decorator)."""
        name = cls.name
        if name in self._packages and self._packages[name] is not cls:
            raise PackageError(f"duplicate package {name!r} in repository {self.name!r}")
        self._packages[name] = cls
        cls.repository = self
        for virtual in cls.provided_virtuals():
            providers = self._providers.setdefault(virtual, [])
            if name not in providers:
                providers.append(name)
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self):
        return iter(sorted(self._packages))

    def get(self, name: str) -> Type[PackageBase]:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name, self.name) from None

    def all_package_names(self) -> List[str]:
        return sorted(self._packages)

    def exists(self, name: str) -> bool:
        return name in self._packages

    # ------------------------------------------------------------------
    # Virtual packages
    # ------------------------------------------------------------------

    def is_virtual(self, name: str) -> bool:
        """A name is virtual when no real package has it but providers do."""
        return name not in self._packages and name in self._providers

    def virtuals(self) -> List[str]:
        return sorted(v for v in self._providers if v not in self._packages)

    def providers_for(self, virtual: str) -> List[str]:
        """Provider package names for a virtual, in preference order."""
        providers = self._providers.get(virtual, [])
        preferences = self._provider_preferences.get(virtual)
        if not preferences:
            return sorted(providers)
        ordered = [p for p in preferences if p in providers]
        ordered += sorted(p for p in providers if p not in ordered)
        return ordered

    def set_provider_preference(self, virtual: str, providers: Sequence[str]):
        """Set the preferred provider order for a virtual (user configuration)."""
        self._provider_preferences[virtual] = list(providers)

    def provider_weights(self, virtual: str) -> Dict[str, int]:
        """0 = most preferred provider (criterion 4/7 in Table II)."""
        return {name: weight for weight, name in enumerate(self.providers_for(virtual))}

    # ------------------------------------------------------------------
    # Possible dependencies (Figures 7a-7c x-axis)
    # ------------------------------------------------------------------

    def direct_possible_dependencies(self, name: str, expand_virtuals: bool = True) -> Set[str]:
        """Names a package can directly depend on, conditions ignored."""
        cls = self.get(name)
        result: Set[str] = set()
        for dependency in cls.dependencies:
            dep_name = dependency.name
            if expand_virtuals and self.is_virtual(dep_name):
                result.update(self.providers_for(dep_name))
            else:
                result.add(dep_name)
        return result

    def possible_dependencies(
        self,
        *names: str,
        expand_virtuals: bool = True,
        include_roots: bool = True,
        missing: Optional[Set[str]] = None,
    ) -> Set[str]:
        """The transitive closure of :meth:`direct_possible_dependencies`.

        Unknown packages encountered along the way are recorded in ``missing``
        (if given) and otherwise ignored, mirroring Spack's behaviour for
        packages referenced but not present in the repository.
        """
        visited: Set[str] = set()
        frontier: List[str] = list(names)
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            if not self.exists(current):
                if self.is_virtual(current):
                    if expand_virtuals:
                        frontier.extend(self.providers_for(current))
                    else:
                        visited.add(current)
                    continue
                if missing is not None:
                    missing.add(current)
                continue
            visited.add(current)
            for dependency in self.direct_possible_dependencies(current, expand_virtuals):
                if dependency not in visited:
                    frontier.append(dependency)
        if not include_roots:
            visited -= set(names)
        return visited

    def possible_dependency_count(self, name: str) -> int:
        """Size of the possible-dependency set excluding the package itself."""
        return len(self.possible_dependencies(name, include_roots=False) - {name})

    # ------------------------------------------------------------------
    # Dependency graph export (used for the Figure 1 style E4S graph)
    # ------------------------------------------------------------------

    def dependency_edges(self, expand_virtuals: bool = True) -> List[Tuple[str, str]]:
        """All (package, possible dependency) edges in the repository."""
        edges: List[Tuple[str, str]] = []
        for name in self:
            for dependency in sorted(self.direct_possible_dependencies(name, expand_virtuals)):
                edges.append((name, dependency))
        return edges


# A process-wide default repository that the builtin packages register into.
_GLOBAL_REPO: Optional[Repository] = None


def builtin_repository(refresh: bool = False) -> Repository:
    """The builtin E4S-style repository (lazily constructed singleton)."""
    global _GLOBAL_REPO
    if _GLOBAL_REPO is None or refresh:
        from repro.spack.builtin import build_repository

        _GLOBAL_REPO = build_repository()
    return _GLOBAL_REPO
