"""Compilers: names, versions, and the targets they can generate code for.

The paper's example: ``gcc@4.8.3`` cannot generate optimized instructions for
``skylake`` processors, so the solver must not pair them.  We model that with
a per-compiler "maximum supported generation" per target family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.spack.architecture import Target, TargetRegistry, TARGETS
from repro.spack.errors import SpackError
from repro.spack.version import Version


@dataclass(frozen=True)
class Compiler:
    """One compiler at one version, e.g. ``gcc@11.2.0``."""

    name: str
    version: Version
    # maximum microarchitecture generation supported, per target family;
    # families not listed are unsupported by this compiler
    max_generation: Tuple[Tuple[str, int], ...] = ()

    @property
    def spec_string(self) -> str:
        return f"{self.name}@{self.version}"

    def supports_target(self, target: Target) -> bool:
        for family, generation in self.max_generation:
            if family == target.family:
                return target.generation <= generation
        return False

    def __str__(self):
        return self.spec_string


def _generation(registry: TargetRegistry, name: str) -> int:
    return registry.get(name).generation


def default_compilers(registry: Optional[TargetRegistry] = None) -> List[Compiler]:
    """A realistic default compiler toolbox.

    Old compilers support only old microarchitectures; new ones support
    everything the registry knows about.
    """
    registry = registry or TARGETS
    newest_x86 = max(t.generation for t in registry.family("x86_64"))
    newest_ppc = max(t.generation for t in registry.family("ppc64le"))
    newest_arm = max(t.generation for t in registry.family("aarch64"))

    def gens(x86: int, ppc: int, arm: int) -> Tuple[Tuple[str, int], ...]:
        return (("x86_64", x86), ("ppc64le", ppc), ("aarch64", arm))

    haswell = _generation(registry, "haswell")
    broadwell = _generation(registry, "broadwell")
    power8 = _generation(registry, "power8le")

    return [
        Compiler("gcc", Version("11.2.0"), gens(newest_x86, newest_ppc, newest_arm)),
        Compiler("gcc", Version("10.3.1"), gens(newest_x86, newest_ppc, newest_arm)),
        Compiler("gcc", Version("8.5.0"), gens(broadwell, newest_ppc, 1)),
        Compiler("gcc", Version("4.8.3"), gens(haswell, power8, 0)),
        Compiler("clang", Version("14.0.6"), gens(newest_x86, newest_ppc, newest_arm)),
        Compiler("clang", Version("12.0.1"), gens(newest_x86, newest_ppc, newest_arm)),
        Compiler("intel", Version("2021.4.0"), (("x86_64", newest_x86),)),
        Compiler("xl", Version("16.1.1"), (("ppc64le", newest_ppc),)),
    ]


class CompilerRegistry:
    """The compilers available for a solve, with preference weights.

    Weight 0 is the most preferred compiler (by default the newest version of
    the preferred compiler name); higher weights are less preferred.  This
    feeds the "non-preferred compilers" criterion (Table II, criterion 13).
    """

    def __init__(
        self,
        compilers: Optional[Iterable[Compiler]] = None,
        preferred: str = "gcc",
        registry: Optional[TargetRegistry] = None,
    ):
        self.registry = registry or TARGETS
        self.compilers: List[Compiler] = list(compilers) if compilers is not None else default_compilers(self.registry)
        if not self.compilers:
            raise SpackError("a compiler registry needs at least one compiler")
        self.preferred = preferred

    def __iter__(self):
        return iter(self.compilers)

    def __len__(self):
        return len(self.compilers)

    def get(self, name: str, version: Optional[str] = None) -> Compiler:
        candidates = [c for c in self.compilers if c.name == name]
        if version is not None:
            wanted = Version(version)
            candidates = [c for c in candidates if c.version == wanted or wanted.is_prefix_of(c.version)]
        if not candidates:
            raise SpackError(f"no such compiler: {name}{'@' + version if version else ''}")
        return max(candidates, key=lambda c: c.version)

    def by_name(self, name: str) -> List[Compiler]:
        return sorted((c for c in self.compilers if c.name == name), key=lambda c: c.version, reverse=True)

    def weights(self) -> Dict[Tuple[str, str], int]:
        """(name, version) -> preference weight; 0 is most preferred."""
        def sort_key(compiler: Compiler):
            return (compiler.name != self.preferred, compiler.name, _NegVersion(compiler.version))

        ordered = sorted(self.compilers, key=sort_key)
        return {(c.name, str(c.version)): weight for weight, c in enumerate(ordered)}

    def default(self) -> Compiler:
        ordered = sorted(self.weights().items(), key=lambda item: item[1])
        name, version = ordered[0][0]
        return self.get(name, version)

    def supported_targets(self, compiler: Compiler, family: str) -> List[Target]:
        return [t for t in self.registry.family(family) if compiler.supports_target(t)]


class _NegVersion:
    """Sort helper: newest version first."""

    __slots__ = ("version",)

    def __init__(self, version: Version):
        self.version = version

    def __lt__(self, other: "_NegVersion") -> bool:
        return other.version < self.version

    def __eq__(self, other) -> bool:
        return isinstance(other, _NegVersion) and self.version == other.version
