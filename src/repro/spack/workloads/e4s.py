"""An E4S-like software stack and buildcache builder.

The Extreme-scale Scientific Software Stack (E4S) the paper evaluates on has
around 100 core products and ~500 required dependencies (Figure 1), and its
buildcache contains 60k+ prebuilt binaries spanning several architectures,
operating systems and compilers (Figures 7e–7g).

Here we define a representative set of E4S root products drawn from the
builtin catalog, plus helpers to

* compute the dependency-graph statistics behind Figure 1;
* populate buildcaches of increasing size by concretizing and "installing"
  the stack under several (target, os, compiler) combinations;
* carve architecture/OS-restricted subsets out of a buildcache, mirroring the
  ppc64le / rhel7 restrictions used in Figure 7e–7g.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.spack.architecture import Platform, default_platform
from repro.spack.compilers import CompilerRegistry
from repro.spack.concretize.concretizer import Concretizer
from repro.spack.repo import Repository, builtin_repository
from repro.spack.spec import Spec
from repro.spack.spec_parser import parse_spec
from repro.spack.store import Database

#: E4S core products present in the builtin catalog (the "red nodes" of Fig. 1).
E4S_ROOTS: Tuple[str, ...] = (
    "adios2",
    "amrex",
    "ascent",
    "axom",
    "berkeleygw",
    "cabana",
    "caliper",
    "conduit",
    "darshan-runtime",
    "dyninst",
    "flecsi",
    "flux-core",
    "ginkgo",
    "heffte",
    "hdf5",
    "hpctoolkit",
    "hpx",
    "hypre",
    "kokkos",
    "kokkos-kernels",
    "legion",
    "magma",
    "mercury",
    "mfem",
    "mpifileutils",
    "netcdf-c",
    "openpmd-api",
    "papi",
    "papyrus",
    "parallel-netcdf",
    "petsc",
    "precice",
    "pumi",
    "raja",
    "scr",
    "slate",
    "slepc",
    "strumpack",
    "sundials",
    "superlu-dist",
    "sz",
    "tasmanian",
    "tau",
    "trilinos",
    "umpire",
    "unifyfs",
    "upcxx",
    "vtk-m",
    "warpx",
    "zfp",
)


def e4s_root_specs(repo: Optional[Repository] = None, limit: Optional[int] = None) -> List[Spec]:
    """Abstract specs for the E4S roots available in ``repo``."""
    repo = repo or builtin_repository()
    names = [name for name in E4S_ROOTS if repo.exists(name)]
    if limit is not None:
        names = names[:limit]
    return [parse_spec(name) for name in names]


def e4s_graph_statistics(repo: Optional[Repository] = None) -> Dict[str, object]:
    """Node/edge statistics of the E4S possible-dependency graph (Figure 1)."""
    repo = repo or builtin_repository()
    roots = [name for name in E4S_ROOTS if repo.exists(name)]
    all_packages = repo.possible_dependencies(*roots)
    dependencies = sorted(all_packages - set(roots))
    edges = [
        (package, dependency)
        for package in sorted(all_packages)
        if repo.exists(package)
        for dependency in sorted(repo.direct_possible_dependencies(package))
        if dependency in all_packages
    ]
    return {
        "roots": sorted(roots),
        "num_roots": len(roots),
        "num_dependencies": len(dependencies),
        "num_packages": len(all_packages),
        "num_edges": len(edges),
        "edges": edges,
    }


#: (target, os, compiler spec) combinations used to fill the buildcache, the
#: analogue of E4S's per-system binary builds.
BUILDCACHE_CONFIGURATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("skylake", "rhel7", "gcc@11.2.0"),
    ("broadwell", "rhel7", "gcc@10.3.1"),
    ("haswell", "centos8", "gcc@11.2.0"),
    ("power9le", "rhel7", "gcc@11.2.0"),
    ("power8le", "rhel8", "gcc@10.3.1"),
    ("x86_64", "ubuntu20.04", "clang@14.0.6"),
)


def _platform_for(target: str, operating_system: str) -> Platform:
    from repro.spack.architecture import TARGETS

    family = TARGETS.get(target).family
    return Platform(
        name="linux",
        family=family,
        default_target=target,
        default_os=operating_system,
    )


def build_buildcache(
    roots: Sequence[str],
    repo: Optional[Repository] = None,
    configurations: Sequence[Tuple[str, str, str]] = BUILDCACHE_CONFIGURATIONS,
    database: Optional[Database] = None,
) -> Database:
    """Concretize ``roots`` under several configurations and install them all.

    This is how the experiments obtain buildcaches of increasing size: more
    configurations (or more roots) mean more installed hashes.
    """
    repo = repo or builtin_repository()
    database = database or Database()
    for target, operating_system, compiler in configurations:
        platform = _platform_for(target, operating_system)
        concretizer = Concretizer(repo=repo, platform=platform)
        for root in roots:
            request = f"{root} %{compiler} target={target} os={operating_system}"
            result = concretizer.concretize(request)
            database.install(result.spec)
    return database


def buildcache_subsets(database: Database) -> Dict[str, Database]:
    """The four nested buildcache subsets used in Figures 7e–7g.

    Returns databases keyed by a label: full, one architecture family
    (ppc64le), one OS (rhel7), and the intersection of both.
    """
    from repro.spack.architecture import TARGETS

    def family_of(spec: Spec) -> str:
        if spec.target and spec.target in TARGETS:
            return TARGETS.get(spec.target).family
        return "unknown"

    return {
        "full": database,
        "ppc64le": database.filtered(lambda s: family_of(s) == "ppc64le"),
        "rhel7": database.filtered(lambda s: s.os == "rhel7"),
        "ppc64le+rhel7": database.filtered(
            lambda s: family_of(s) == "ppc64le" and s.os == "rhel7"
        ),
    }
