"""Workload builders for the paper's experiments (E4S stack, buildcaches)."""

from repro.spack.workloads.e4s import (
    E4S_ROOTS,
    build_buildcache,
    buildcache_subsets,
    e4s_root_specs,
    e4s_graph_statistics,
)

__all__ = [
    "E4S_ROOTS",
    "build_buildcache",
    "buildcache_subsets",
    "e4s_root_specs",
    "e4s_graph_statistics",
]
