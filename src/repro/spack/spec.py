"""The Spec: Spack's dependency-graph data structure.

A :class:`Spec` describes (part of) a software installation: package name,
version constraints, variants, compiler, target, operating system, and
dependencies.  *Abstract* specs are under-constrained (what users type on the
command line, what packages declare in directives); *concrete* specs have
every parameter pinned and every dependency resolved — they are what the
concretizer produces and what gets installed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.spack.architecture import TARGETS
from repro.spack.errors import DuplicateDependencyError, SpackError
from repro.spack.version import (
    Version,
    VersionList,
    parse_version_constraint,
)

VariantValue = Union[str, Tuple[str, ...]]


def normalize_variant_value(value) -> VariantValue:
    """Normalize a variant value: booleans become "true"/"false" strings."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(sorted(normalize_variant_value(v) for v in value))
    return str(value)


def target_matches(value: str, constraint: str) -> bool:
    """Does a concrete target satisfy a target constraint?

    Constraints may be an exact target (``skylake``), a family (``x86_64``),
    or a Spack-style open range ``aarch64:`` meaning "this target or anything
    newer in the same family".
    """
    if value == constraint:
        return True
    open_range = constraint.endswith(":")
    base = constraint.rstrip(":")
    if base not in TARGETS and not TARGETS.is_family(base):
        return value == base
    if TARGETS.is_family(base):
        return value in TARGETS and TARGETS.get(value).family == base
    if value not in TARGETS:
        return False
    target = TARGETS.get(value)
    reference = TARGETS.get(base)
    if target.family != reference.family:
        return False
    if open_range:
        return target.generation >= reference.generation
    return target.name == reference.name


class Spec:
    """A node (and, through ``dependencies``, a DAG) in Spack's build space."""

    def __init__(
        self,
        name: Optional[str] = None,
        versions: Optional[Union[VersionList, str]] = None,
        variants: Optional[Dict[str, VariantValue]] = None,
        compiler: Optional[str] = None,
        compiler_versions: Optional[Union[VersionList, str]] = None,
        os: Optional[str] = None,
        target: Optional[str] = None,
        dependencies: Optional[Dict[str, "Spec"]] = None,
    ):
        self.name = name
        if isinstance(versions, str):
            versions = parse_version_constraint(versions)
        self.versions: VersionList = versions or VersionList()
        self.variants: Dict[str, VariantValue] = {
            k: normalize_variant_value(v) for k, v in (variants or {}).items()
        }
        self.compiler = compiler
        if isinstance(compiler_versions, str):
            compiler_versions = parse_version_constraint(compiler_versions)
        self.compiler_versions: VersionList = compiler_versions or VersionList()
        self.os = os
        self.target = target
        self.dependencies: Dict[str, "Spec"] = dict(dependencies or {})
        self.installed_hash: Optional[str] = None
        self._concrete = False
        self._dag_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def version(self) -> Version:
        """The pinned version (only meaningful for concrete specs)."""
        concrete = self.versions.concrete
        if concrete is None:
            raise SpackError(f"spec {self} has no concrete version")
        return concrete

    @property
    def concrete(self) -> bool:
        return self._concrete

    @property
    def anonymous(self) -> bool:
        return self.name is None

    def mark_concrete(self, value: bool = True) -> "Spec":
        self._concrete = value
        self._dag_hash = None
        return self

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def traverse(self, root: bool = True, order: str = "pre", _visited=None) -> Iterator["Spec"]:
        """Depth-first traversal over the dependency DAG (deduplicated by name)."""
        if _visited is None:
            _visited = set()
        key = self.name or id(self)
        if key in _visited:
            return
        _visited.add(key)
        if root and order == "pre":
            yield self
        for name in sorted(self.dependencies):
            yield from self.dependencies[name].traverse(order=order, _visited=_visited)
        if root and order == "post":
            yield self

    def flat_dependencies(self) -> Dict[str, "Spec"]:
        """All transitive dependencies keyed by name (excluding the root)."""
        return {spec.name: spec for spec in self.traverse(root=False)}

    def __getitem__(self, name: str) -> "Spec":
        """Look up a transitive dependency by name (Spack's ``spec['zlib']``)."""
        if self.name == name:
            return self
        for spec in self.traverse(root=False):
            if spec.name == name:
                return spec
        raise KeyError(name)

    def __contains__(self, name) -> bool:
        if isinstance(name, Spec):
            name = name.name
        try:
            self[name]
            return True
        except KeyError:
            return False

    # ------------------------------------------------------------------
    # Constraint operations
    # ------------------------------------------------------------------

    def constrain(self, other: "Spec") -> "Spec":
        """Tighten this spec with the constraints of ``other`` (in place).

        Raises :class:`SpackError` when the two are inconsistent.
        """
        if other.name is not None:
            if self.name is None:
                self.name = other.name
            elif self.name != other.name:
                raise SpackError(f"cannot constrain {self.name} with {other.name}")

        self.versions = self.versions.constrain(other.versions)

        for variant, value in other.variants.items():
            if variant in self.variants and self.variants[variant] != value:
                raise SpackError(
                    f"conflicting values for variant {variant!r} on {self.name}: "
                    f"{self.variants[variant]!r} vs {value!r}"
                )
            self.variants[variant] = value

        if other.compiler is not None:
            if self.compiler is not None and self.compiler != other.compiler:
                raise SpackError(
                    f"conflicting compilers on {self.name}: {self.compiler} vs {other.compiler}"
                )
            self.compiler = other.compiler
        self.compiler_versions = self.compiler_versions.constrain(other.compiler_versions)

        for attribute in ("os", "target"):
            theirs = getattr(other, attribute)
            mine = getattr(self, attribute)
            if theirs is not None:
                if mine is not None and mine != theirs:
                    raise SpackError(
                        f"conflicting {attribute} on {self.name}: {mine} vs {theirs}"
                    )
                setattr(self, attribute, theirs)

        for name, dependency in other.dependencies.items():
            if name in self.dependencies:
                self.dependencies[name].constrain(dependency)
            else:
                self.dependencies[name] = dependency.copy()
        return self

    def satisfies(self, other: Union["Spec", str]) -> bool:
        """Does this spec satisfy every constraint expressed by ``other``?

        Values that ``other`` constrains but this spec has not pinned yet count
        as *not* satisfied (the conservative reading used both by ``when=``
        clause evaluation in the original concretizer and by store queries).
        """
        if isinstance(other, str):
            from repro.spack.spec_parser import parse_spec

            other = parse_spec(other)

        if other.name is not None and self.name != other.name:
            return False

        if not other.versions.is_any:
            mine = self.versions.concrete
            if mine is not None:
                if not other.versions.includes(mine):
                    return False
            elif not self.versions.intersects(other.versions):
                return False
            elif self.versions.is_any:
                return False

        for variant, value in other.variants.items():
            if self.variants.get(variant) != value:
                return False

        if other.compiler is not None and self.compiler != other.compiler:
            return False
        if not other.compiler_versions.is_any:
            mine = self.compiler_versions.concrete
            if mine is None or not other.compiler_versions.includes(mine):
                return False

        if other.os is not None and self.os != other.os:
            return False
        if other.target is not None:
            if self.target is None or not target_matches(self.target, other.target):
                return False

        for name, constraint in other.dependencies.items():
            try:
                mine = self[name]
            except KeyError:
                return False
            if not mine.satisfies(constraint):
                return False
        return True

    def intersects(self, other: "Spec") -> bool:
        """Could a concrete spec satisfy both this spec and ``other``?"""
        try:
            self.copy().constrain(other.copy())
            return True
        except SpackError:
            return False

    # ------------------------------------------------------------------
    # Copying / serialization
    # ------------------------------------------------------------------

    def copy(self, deps: bool = True) -> "Spec":
        clone = Spec(
            name=self.name,
            versions=self.versions.copy(),
            variants=dict(self.variants),
            compiler=self.compiler,
            compiler_versions=self.compiler_versions.copy(),
            os=self.os,
            target=self.target,
        )
        clone.installed_hash = self.installed_hash
        clone._concrete = self._concrete
        if deps:
            clone.dependencies = {
                name: dep.copy(deps=True) for name, dep in self.dependencies.items()
            }
        return clone

    def node_dict(self) -> Dict:
        """Serializable description of this node (without dependencies)."""
        return {
            "name": self.name,
            "version": str(self.versions),
            "variants": {k: list(v) if isinstance(v, tuple) else v for k, v in sorted(self.variants.items())},
            "compiler": self.compiler,
            "compiler_version": str(self.compiler_versions),
            "os": self.os,
            "target": self.target,
        }

    def to_dict(self) -> Dict:
        """Serializable description of the full DAG rooted at this spec."""
        data = {
            "node": self.node_dict(),
            "hash": self.dag_hash() if self.concrete else None,
            "dependencies": {
                name: dependency.to_dict()
                for name, dependency in sorted(self.dependencies.items())
            },
        }
        # kept outside node_dict(): the install-provenance marker must
        # round-trip (persistent solve caches replay reuse results), but it
        # is not part of the node's identity, so dag_hash() must not see it
        if self.installed_hash:
            data["installed_hash"] = self.installed_hash
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Spec":
        node = data["node"]
        spec = cls(
            name=node["name"],
            versions=node["version"],
            variants={
                k: tuple(v) if isinstance(v, list) else v
                for k, v in node.get("variants", {}).items()
            },
            compiler=node.get("compiler"),
            compiler_versions=node.get("compiler_version", ""),
            os=node.get("os"),
            target=node.get("target"),
        )
        for name, sub in data.get("dependencies", {}).items():
            spec.dependencies[name] = cls.from_dict(sub)
        if data.get("hash"):
            spec.mark_concrete()
        spec.installed_hash = data.get("installed_hash")
        return spec

    # ------------------------------------------------------------------
    # Hashing (Figure 4: per-node hashes for reuse)
    # ------------------------------------------------------------------

    def dag_hash(self, length: int = 32) -> str:
        """A content hash of this node and its whole dependency subtree."""
        if self._dag_hash is None:
            payload = {
                "node": self.node_dict(),
                "dependencies": {
                    name: self.dependencies[name].dag_hash()
                    for name in sorted(self.dependencies)
                },
            }
            encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._dag_hash = hashlib.sha256(encoded).hexdigest()
        return self._dag_hash[:length]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _node_string(self) -> str:
        parts: List[str] = []
        if self.name:
            parts.append(self.name)
        if not self.versions.is_any:
            parts.append(f"@{self.versions}")
        if self.compiler:
            compiler = f"%{self.compiler}"
            if not self.compiler_versions.is_any:
                compiler += f"@{self.compiler_versions}"
            parts.append(compiler)
        for variant in sorted(self.variants):
            value = self.variants[variant]
            if value == "true":
                parts.append(f"+{variant}")
            elif value == "false":
                parts.append(f"~{variant}")
            elif isinstance(value, tuple):
                parts.append(f"{variant}={','.join(value)}")
            else:
                parts.append(f"{variant}={value}")
        if self.os:
            parts.append(f"os={self.os}")
        if self.target:
            parts.append(f"target={self.target}")
        return " ".join(parts) if len(parts) > 1 else "".join(parts) or "(anonymous)"

    def format(self) -> str:
        """Just this node, no dependencies."""
        return self._node_string()

    def tree(self, indent: int = 0) -> str:
        """An indented rendering of the whole DAG (like ``spack spec``)."""
        lines = [" " * indent + self._node_string()]
        for name in sorted(self.dependencies):
            lines.append(self.dependencies[name].tree(indent + 4))
        return "\n".join(lines)

    def __str__(self) -> str:
        out = self._node_string()
        for spec in self.traverse(root=False):
            out += f" ^{spec._node_string()}"
        return out

    def __repr__(self) -> str:
        return f"Spec('{self}')"

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------

    def _cmp_key(self):
        return (
            self.name,
            str(self.versions),
            tuple(sorted(self.variants.items())),
            self.compiler,
            str(self.compiler_versions),
            self.os,
            self.target,
            tuple(sorted((n, d._cmp_key()) for n, d in self.dependencies.items())),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Spec):
            return NotImplemented
        return self._cmp_key() == other._cmp_key()

    def __hash__(self) -> int:
        return hash(self._cmp_key())
