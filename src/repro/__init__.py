"""repro: a reproduction of *Using Answer Set Programming for HPC Dependency Solving*.

The package is organised in two layers:

``repro.asp``
    A self-contained Answer Set Programming system (parser, grounder, CDCL
    solver with stable-model semantics and multi-level optimization).  It
    plays the role of *clingo* in the paper.

``repro.spack``
    A Spack-like package manager substrate: spec syntax, version semantics,
    microarchitecture/compiler model, package DSL, repositories, an installed
    package store, and two concretizers — the paper's ASP-based concretizer
    and the original greedy baseline.
"""

from repro.asp.configs import SolverConfig
from repro.asp.control import Control, PreparedProgram, SolveResult
from repro.spack.concretize import (
    AsyncConcretizationSession,
    ConcretizationResult,
    ConcretizationSession,
    Concretizer,
    SessionConfig,
    explain_unsat,
)
from repro.spack.store import Database, SolveCache

__version__ = "1.3.0"

__all__ = [
    "AsyncConcretizationSession",
    "ConcretizationResult",
    "ConcretizationSession",
    "Concretizer",
    "Control",
    "Database",
    "PreparedProgram",
    "SessionConfig",
    "SolveCache",
    "SolveResult",
    "SolverConfig",
    "explain_unsat",
    "__version__",
]
