"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments whose tooling predates PEP 660
editable installs (e.g. ``python setup.py develop`` on machines without the
``wheel`` package, as on air-gapped HPC login nodes).
"""

from setuptools import setup

setup()
