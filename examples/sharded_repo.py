#!/usr/bin/env python3
"""Sharded repositories: per-shard content hashes and incremental grounding.

The builtin E4S-style catalog is a :class:`~repro.spack.repo.ShardedRepository`
— one :class:`~repro.spack.repo.RepositoryShard` per catalog module, each
with its own stable content hash.  A concretization session over it grounds
the spec-independent program as a *stack* of per-shard layers and caches
every prefix of the stack, so:

* the composed (Merkle) repository hash pinpoints *which* shard changed;
* editing one shard re-grounds only that shard's layer — every other
  layer is replayed from the in-memory or on-disk ground cache.

This example concretizes a small root, then "edits" the deepest shard of
its dependency closure and shows the invalidation counters: exactly one
layer re-grounds.

Run with::

    PYTHONPATH=src python examples/sharded_repo.py
"""

from repro.spack.builtin import build_sharded_repository
from repro.spack.concretize import ConcretizationSession
from repro.spack.concretize.encoder import ProblemEncoder
from repro.spack.directives import depends_on, version
from repro.spack.package import Package
from repro.spack.spec_parser import parse_spec

ROOT = "cmake"


class Mytool(Package):
    """A local recipe added to one shard (the "edit")."""

    version("1.0")
    depends_on("zlib")


def show_stats(label, session):
    stats = session.stats
    print(
        f"    {label}: {stats.shard_layers_grounded} layers ground, "
        f"{stats.shard_layers_replayed} replayed from memory, "
        f"{stats.shard_layers_disk} from disk"
    )


def main():
    repo = build_sharded_repository()
    print(f"{len(repo.shards)} shards, composed hash {repo.content_hash()[:12]}…")
    for name, digest in repo.shard_hashes():
        shard = repo.shard(name)
        print(f"    {name:14s} {digest[:12]}…  ({len(shard)} packages)")

    print(f"\nconcretizing {ROOT!r} (cold: every included layer grounds)")
    session = ConcretizationSession(repo=repo)
    result = session.concretize(ROOT)
    show_stats("cold", session)
    print(f"    -> {result.spec}")

    # Edit one shard: the composed hash moves, the other shards' hashes --
    # and their cached ground layers -- stay put.  A shard edit invalidates
    # its own layer plus the layers stacked above it, so editing the
    # *deepest* shard of the dependency closure costs exactly one layer.
    edited = build_sharded_repository()
    possible = ProblemEncoder.possible_packages_for(edited, [parse_spec(ROOT)])
    target = [s.name for s in edited.shards if any(p in s for p in possible)][-1]
    edited.add(Mytool, shard=target)
    print(f"\nadding a package to shard {target!r}")
    print(f"    composed hash now {edited.content_hash()[:12]}…")
    changed = [
        name
        for (name, before), (_, after) in zip(repo.shard_hashes(), edited.shard_hashes())
        if before != after
    ]
    print(f"    shard hashes changed: {changed}")

    second = ConcretizationSession(repo=edited)
    second.concretize(ROOT)
    show_stats("after the edit", second)
    print("    (the unchanged shard layers were replayed, not re-ground)")


if __name__ == "__main__":
    main()
