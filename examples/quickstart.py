#!/usr/bin/env python3
"""Quickstart: concretize a spec with the ASP-based concretizer.

This walks through the paper's core workflow (Section V):

1. write an abstract spec with the sigil syntax of Table I,
2. let the concretizer turn it into a complete, optimal concrete spec,
3. inspect the resulting DAG, the optimization cost vector, and the
   per-phase timings (setup / load / ground / solve).

Run with::

    python examples/quickstart.py
"""

from repro.spack.concretize import Concretizer, describe_costs
from repro.spack.spec_parser import parse_spec


def main():
    # An abstract spec: "bzip2, at least 1.0.7, built with gcc" — everything
    # else (exact version, variants, target, OS, dependencies) is left to the
    # concretizer.
    abstract = parse_spec("bzip2@1.0.7: %gcc")
    print("abstract spec:   ", abstract)

    concretizer = Concretizer()
    result = concretizer.concretize(abstract)

    print("\nconcrete spec DAG:")
    print(result.spec.tree(indent=2))

    print("\nall nodes are fully specified:")
    for name, node in sorted(result.specs.items()):
        print(f"  {node.format()}")

    print("\noptimization cost vector (non-zero levels, best model):")
    for line in describe_costs({k: v for k, v in result.costs.items() if v}):
        print("  " + line)

    print("\nper-phase timings (seconds):")
    for phase in ("setup", "load", "ground", "solve"):
        print(f"  {phase:<6} {result.timings.get(phase, 0.0):8.3f}")

    print("\nsolver statistics:")
    encoding = result.statistics["encoding"]
    ground = result.statistics["ground"]
    print(f"  possible dependencies: {encoding['possible_dependencies']}")
    print(f"  facts generated:       {encoding['facts']}")
    print(f"  ground atoms:          {ground['atoms']}")
    print(f"  ground rules:          {ground['normal_rules']}")


if __name__ == "__main__":
    main()
