#!/usr/bin/env python3
"""Async concretization sessions and multi-catalog composition, step by step.

This walks the two ISSUE-4 additions together (see ``docs/ARCHITECTURE.md``):

1. an **async session** (:class:`repro.spack.concretize.async_session.AsyncConcretizationSession`)
   wraps the worker-pool fan-out in ``asyncio``: ``await
   session.concretize(spec)`` for single requests, and ``as_completed()``
   to *stream* a batch — each result is yielded the moment its solve
   finishes, so the first answer arrives long before the slowest one,
   with a semaphore bounding how many workers are leased at once;
2. a **composed catalog** (``ShardedRepository.compose(user_repo,
   builtin_repo)``) stacks a user repository's shards *after* the builtin
   ones, so one session serves both catalogs and editing a user package
   re-grounds exactly one base layer.

Run with::

    PYTHONPATH=src python examples/async_session.py
"""

import asyncio
import time

from repro.spack.concretize import AsyncConcretizationSession
from repro.spack.directives import depends_on, version
from repro.spack.package import Package
from repro.spack.repo import Repository, ShardedRepository, builtin_repository


class Mytool(Package):
    """A user-defined package consuming builtin packages and virtuals."""

    version("2.0")
    version("1.0")
    depends_on("zlib@1.2.8:")
    depends_on("hdf5~mpi")


#: Overlapping requests, the service shape: builtin roots and the user's own
#: package, with one exact repeat that never leases a worker.
REQUESTS = [
    "mytool",
    "zlib",
    "zlib+pic",
    "hdf5~mpi",
    "mytool@1.0",
    "zlib",  # exact repeat: answered from the solve cache immediately
]


async def main():
    # ------------------------------------------------------------------
    # Act 1: compose the user catalog behind the builtin one.  User shards
    # layer *after* builtin shards, so the builtin ground layers are shared
    # with every other session and editing mytool re-grounds one layer.
    # ------------------------------------------------------------------
    user_repo = Repository(name="user", packages=[Mytool])
    composed = ShardedRepository.compose(user_repo, builtin_repository())
    print(f"composed catalog: {composed!r}")
    print(f"layer order:      {[shard.name for shard in composed.layering_shards()]}\n")

    # ------------------------------------------------------------------
    # Act 2: stream a batch.  as_completed() yields (input index, result)
    # pairs in *completion* order: cache hits first, then each solve the
    # moment its worker finishes.
    # ------------------------------------------------------------------
    async with AsyncConcretizationSession(repo=composed, max_concurrency=4) as session:
        start = time.perf_counter()
        async for index, result in session.as_completed(REQUESTS):
            elapsed = time.perf_counter() - start
            cache = result.statistics["session"]["solve_cache"]
            print(f"[{elapsed:6.2f}s] #{index} {REQUESTS[index]!r:24s} "
                  f"-> {result.spec}  [solve cache: {cache}]")

        # --------------------------------------------------------------
        # Act 3: single awaited requests go through the same caches — a
        # repeated spec replays without touching the grounder or solver.
        # --------------------------------------------------------------
        result = await session.concretize("mytool")
        print(f"\nawait concretize('mytool') -> {result.spec}")

        print("\nasync session statistics:")
        for key, value in session.stats.as_dict().items():
            print(f"    {key:22s} {value}")


if __name__ == "__main__":
    asyncio.run(main())
