#!/usr/bin/env python3
"""Usability improvements from a complete solver (paper Section VI-B).

The greedy concretizer picks variant defaults *before* descending into
dependencies and cannot backtrack, so ``hpctoolkit ^mpich`` fails even though
a valid configuration exists (enable hpctoolkit's ``mpi`` variant, or pull
mpich in through any other conditional edge).  The ASP concretizer considers
all of these choices at once and simply finds a configuration in which mpich
is part of the solution.

Run with::

    python examples/conditional_dependencies.py
"""

from repro.spack.concretize import Concretizer, OriginalConcretizer
from repro.spack.errors import UnsatisfiableSpecError


def main():
    request = "hpctoolkit ^mpich"
    print(f"request: spack spec {request}\n")

    print("--- original (greedy) concretizer " + "-" * 30)
    original = OriginalConcretizer()
    try:
        original.concretize(request)
        print("unexpectedly succeeded!")
    except UnsatisfiableSpecError as error:
        print(f"==> Error: {error}")
        print("(the greedy algorithm chose the default ~mpi before looking at mpich)")

    print("\n--- ASP-based concretizer " + "-" * 38)
    concretizer = Concretizer()
    result = concretizer.concretize(request)
    hpctoolkit = result.specs["hpctoolkit"]
    mpich = result.specs.get("mpich")
    print(f"solved {len(result.specs)} nodes in {result.timings['total']:.1f}s")
    print(f"  hpctoolkit: {hpctoolkit.format()}")
    print(f"  mpich in the DAG: {mpich is not None}")
    parents = [
        name for name, node in result.specs.items() if "mpich" in node.dependencies
    ]
    print(f"  mpich is a dependency of: {', '.join(sorted(parents))}")

    print("\n--- conflicts are constraints, not post-hoc errors " + "-" * 12)
    # dyninst conflicts with %intel; asking for it with the intel compiler is
    # rejected up front by the solver (Section VI-B.2).
    try:
        concretizer.concretize("dyninst %intel")
        print("unexpectedly succeeded!")
    except UnsatisfiableSpecError:
        print("dyninst %intel correctly reported as unsatisfiable")
    result = concretizer.concretize("dyninst")
    print(f"dyninst without constraints picks: %{result.spec.compiler}@{result.spec.compiler_versions}")


if __name__ == "__main__":
    main()
