#!/usr/bin/env python3
"""Explore the E4S-like stack (paper Figure 1) and concretize a slice of it.

Prints the possible-dependency graph statistics of the builtin E4S-style
repository (roots vs. required dependencies, as in Figure 1), shows the
two-cluster structure of possible-dependency counts discussed in Section
VII-B, and concretizes a few E4S products.

Run with::

    python examples/e4s_stack.py
"""

from collections import Counter

from repro.spack.concretize import Concretizer
from repro.spack.repo import builtin_repository
from repro.spack.workloads import E4S_ROOTS, e4s_graph_statistics


def main():
    repo = builtin_repository()

    print("=== the E4S-like dependency graph (Figure 1) ===")
    stats = e4s_graph_statistics(repo)
    print(f"  core products (roots): {stats['num_roots']}")
    print(f"  required dependencies: {stats['num_dependencies']}")
    print(f"  total packages:        {stats['num_packages']}")
    print(f"  possible dependency edges: {stats['num_edges']}")

    print("\n=== possible-dependency counts (the x-axis of Figures 7a-7c) ===")
    counts = {name: repo.possible_dependency_count(name) for name in repo}
    histogram = Counter()
    for count in counts.values():
        histogram[count // 10 * 10] += 1
    for bucket in sorted(histogram):
        bar = "#" * histogram[bucket]
        print(f"  {bucket:>4}-{bucket + 9:<4} {bar}")
    reach_mpi = sum(
        1 for name in repo if "mpich" in repo.possible_dependencies(name, include_roots=False)
    )
    print(f"  packages that can reach MPI: {reach_mpi} / {len(repo)}")

    print("\n=== concretizing a few E4S products ===")
    concretizer = Concretizer(repo=repo)
    for product in ("zfp", "caliper", "hypre"):
        result = concretizer.concretize(product)
        print(
            f"  {product:<10} nodes={len(result.specs):<3} "
            f"possible deps={result.statistics['encoding']['possible_dependencies']:<4} "
            f"ground={result.timings['ground']:.1f}s solve={result.timings['solve']:.1f}s"
        )

    print("\nE4S root products modeled:", ", ".join(E4S_ROOTS[:12]), "...")


if __name__ == "__main__":
    main()
