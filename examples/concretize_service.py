#!/usr/bin/env python3
"""Concretization-as-a-service, step by step (the ISSUE-6 tentpole).

This walks the service stack without needing a second terminal: it boots a
real HTTP server on an ephemeral port, then plays the roles of several
clients against it.

1. **The service core** (:class:`repro.spack.service.app.ConcretizationService`)
   owns a private asyncio loop and one
   :class:`repro.spack.concretize.async_session.AsyncConcretizationSession`
   per tenant.  Tenant catalogs are composed with
   ``ShardedRepository.compose(overlay, base)`` — overlay shards layer
   *after* the base, so every tenant shares the base ground layers and a
   tenant edit re-grounds exactly one layer.
2. **The HTTP transport** (:class:`repro.spack.service.http.ConcretizationServer`)
   maps it onto ``POST /v1/concretize``, ``POST /v1/concretize_batch``
   (ordered, or ``"stream": true`` for completion-order NDJSON),
   ``GET /v1/healthz``, and ``GET /v1/stats``.
3. **Deadlines**: each request carries ``deadline_s`` (or an
   ``X-Deadline-Seconds`` header); a request that cannot finish in time is
   answered **504** and its solve is *cancelled* through the async session
   — the leased workers come back immediately.
4. **Backpressure**: at most ``max_concurrency + queue_limit`` requests are
   in flight; the next one is shed with **429** and a ``Retry-After`` hint
   instead of queueing without bound.

Run with::

    PYTHONPATH=src python examples/concretize_service.py
"""

import json
import time
import urllib.error
import urllib.request

from repro.spack.directives import depends_on, version
from repro.spack.package import Package
from repro.spack.service import ConcretizationServer, ConcretizationService


class Webstack(Package):
    """A tenant-private package layered over the shared builtin catalog."""

    version("1.0")
    depends_on("zlib@1.2.8:")
    depends_on("openssl")


def post(url, payload):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


def main():
    service = ConcretizationService(max_concurrency=4, default_deadline_s=120.0)
    service.add_tenant("acme", packages=[Webstack])

    with service, ConcretizationServer(service, port=0) as server:
        print(f"serving on {server.url}\n")

        # -- a single solve through the default tenant (builtin catalog)
        start = time.perf_counter()
        status, body = post(f"{server.url}/v1/concretize", {"spec": "zlib"})
        print(f"[{status}] zlib -> {body['result']['concrete'].split(' %')[0]}"
              f"  ({time.perf_counter() - start:.2f}s cold)")

        # -- the same solve again: answered from the tenant's warm cache
        start = time.perf_counter()
        status, body = post(f"{server.url}/v1/concretize", {"spec": "zlib"})
        print(f"[{status}] zlib again                 "
              f"({time.perf_counter() - start:.3f}s warm)")

        # -- the acme tenant sees its private package over the shared base
        status, body = post(
            f"{server.url}/v1/concretize", {"spec": "webstack", "tenant": "acme"}
        )
        print(f"[{status}] webstack (tenant=acme) -> "
              f"{body['result']['concrete'].split(' %')[0]}")

        # -- the default tenant does not
        status, body = post(f"{server.url}/v1/concretize", {"spec": "webstack"})
        print(f"[{status}] webstack (default tenant): {body['error']}")

        # -- a malformed spec is a clean 400, not a dead worker
        status, body = post(f"{server.url}/v1/concretize", {"spec": "zlib+pic+pic"})
        print(f"[{status}] zlib+pic+pic: {body['error']}")

        # -- an impossible deadline: 504, and the solve is cancelled
        status, body = post(
            f"{server.url}/v1/concretize",
            {"spec": "hdf5+mpi", "deadline_s": 0.05},
        )
        print(f"[{status}] hdf5+mpi with a 50 ms deadline: {body['error']}")

        # -- service statistics: admission, deadlines, per-tenant sessions
        with urllib.request.urlopen(f"{server.url}/v1/stats", timeout=30) as response:
            stats = json.loads(response.read())
        svc = stats["service"]
        print(
            f"\nstats: {svc['requests']} requests, "
            f"{svc['completed']} completed, "
            f"{svc['deadline_exceeded']} deadline-exceeded, "
            f"{svc['rejected_overload']} shed"
        )
        for tenant, tstats in sorted(stats["tenants"].items()):
            print(f"  {tenant}: {tstats['requests']} requests over "
                  f"{tstats['packages']} packages ({tstats['catalog']})")


if __name__ == "__main__":
    main()
