#!/usr/bin/env python3
"""Parallel solve workers + a persistent on-disk cache, step by step.

This mirrors :mod:`examples.batch_session`, scaled up along the two axes
ISSUE 2 added (see ``docs/ARCHITECTURE.md`` and ``docs/CACHING.md``):

1. a **parallel session** (``SessionConfig(workers=N)``) grounds the
   shared spec-independent base once, then fans each spec's delta-ground +
   solve out to a pool of forked workers — results come back in input
   order, element-wise identical to a sequential session;
2. a **persistent cache** (``SessionConfig(cache_dir=...)``) writes every
   solved result (and the grounded base, as both a pickle and an
   mmap-able snapshot) to disk, so a *second session* — even in a new
   process, hours later — replays the whole batch without a single
   grounding or solver call.

Run with::

    PYTHONPATH=src python examples/parallel_session.py
"""

import tempfile

from repro.spack.concretize import ConcretizationSession, SessionConfig

#: Overlapping requests, the build-cache-population shape: same roots, many
#: versions/variants, one exact repeat.  All of them share one grounded base.
REQUESTS = [
    "zlib",
    "zlib+pic",
    "zlib~pic",
    "zlib@1.2.11",
    "bzip2",
    "bzip2~shared",
    "zlib+pic",  # exact repeat: answered from the solve cache, never a worker
]


def main():
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        # ------------------------------------------------------------------
        # Act 1: a parallel session. workers=2 solves cache-missing specs on
        # two forked processes; the shared base is grounded once, up front,
        # in the parent, so workers inherit it and only delta-ground.
        # ------------------------------------------------------------------
        config = SessionConfig(workers=2, cache_dir=cache_dir)
        session = ConcretizationSession(session_config=config)
        print(f"content hash: {session.content_hash()}")
        print(f"cache dir:    {cache_dir}\n")

        results = session.solve(REQUESTS)
        for request, result in zip(REQUESTS, results):
            cache = result.statistics["session"]["solve_cache"]
            print(f"{request!r}  [solve cache: {cache}]")
            for line in result.spec.tree().splitlines():
                print(f"    {line}")

        print("\nparallel session statistics:")
        for key, value in session.stats.as_dict().items():
            print(f"    {key:20s} {value}")

        # ------------------------------------------------------------------
        # Act 2: a warm start. A brand-new session over the same cache_dir
        # (imagine a new process on the next CI run) replays every result
        # from disk: zero base groundings, zero delta groundings, zero
        # solver calls.
        # ------------------------------------------------------------------
        warm = ConcretizationSession(session_config=SessionConfig(cache_dir=cache_dir))
        warm_results = warm.solve(REQUESTS)
        assert [str(r.spec) for r in warm_results] == [str(r.spec) for r in results]

        print("\nwarm session statistics (second session, same cache dir):")
        for key, value in warm.stats.as_dict().items():
            print(f"    {key:20s} {value}")
        print("\nwarm solve cache:", warm.solve_cache.statistics())
        assert warm.stats.solve_cache_misses == 0, "warm start should never miss"
        assert warm.stats.delta_groundings == 0, "warm start should never ground"


if __name__ == "__main__":
    main()
