#!/usr/bin/env python3
"""Batch concretization: many related specs through one shared session.

The paper's evaluation solves thousands of related specs (the Figure 6 reuse
study, the Figure 7e-7g build-cache sweeps).  A
:class:`~repro.spack.concretize.ConcretizationSession` shares everything
those solves have in common:

* the repository/compiler/platform facts are encoded and grounded once
  (the *spec-independent base*);
* each solve forks that base and grounds only its own root facts
  (the *spec-dependent delta*);
* repeated specs are answered straight from the solve cache.

Run with::

    PYTHONPATH=src python examples/batch_session.py
"""

from repro.spack.concretize import ConcretizationSession

REQUESTS = [
    "bzip2@1.0.7: %gcc",
    "zlib+pic",
    "bzip2@1.0.7: %gcc",  # a repeat: answered from the solve cache
]


def main():
    session = ConcretizationSession()

    print(f"content hash: {session.content_hash()}\n")
    results = session.solve(REQUESTS)

    for request, result in zip(REQUESTS, results):
        cache = result.statistics["session"]["solve_cache"]
        print(f"{request!r}  [solve cache: {cache}]")
        for line in result.spec.tree().splitlines():
            print(f"    {line}")
        print()

    print("session statistics:")
    for key, value in session.stats.as_dict().items():
        print(f"    {key:20s} {value}")


if __name__ == "__main__":
    main()
