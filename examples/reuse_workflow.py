#!/usr/bin/env python3
"""Reusing already-built packages (paper Section VI, Figure 6).

Workflow:

1. concretize and "install" an hdf5 stack into the store;
2. ask for a slightly different hdf5 — with hash-based reuse (the old
   mechanism, Figure 6a) nothing matches and everything would be rebuilt;
3. with the reuse-aware solver (Figure 6b) the installed packages are reused
   and only the packages that actually changed are rebuilt.

Run with::

    python examples/reuse_workflow.py
"""

from repro.spack.concretize import Concretizer, OriginalConcretizer
from repro.spack.store import Database


def main():
    store = Database()

    print("step 1: build and install hdf5 (default configuration)")
    concretizer = Concretizer()
    installed = concretizer.concretize("hdf5")
    store.install(installed.spec)
    print(f"  installed {len(store)} packages into the store\n")

    request = "hdf5+hl"  # a slightly different configuration of the same stack
    print(f"step 2: request a different configuration: {request}")

    # --- Figure 6a: hash-based reuse only (original concretizer) -----------
    original = OriginalConcretizer(store=store)
    old_result = original.concretize(request)
    print("  hash-based reuse (old concretizer):")
    print(f"    packages: {len(old_result.specs)}")
    print(f"    reused:   {old_result.number_reused}")
    print(f"    to build: {old_result.number_of_builds}   <- every hash misses")

    # --- Figure 6b: reuse as an optimization objective ---------------------
    reusing = Concretizer(store=store, reuse=True)
    new_result = reusing.concretize(request)
    print("  solver-driven reuse (ASP concretizer):")
    print(f"    packages: {len(new_result.specs)}")
    print(f"    reused:   {new_result.number_reused}")
    print(f"    to build: {new_result.number_of_builds}   <- only what really changed")
    print(f"    rebuilt:  {', '.join(sorted(new_result.built))}")

    print("\nstep 3: reuse does not degrade the defaults of what *is* built")
    print(f"  hdf5 version chosen: {new_result.specs['hdf5'].versions}")
    print(f"  number of builds criterion sits between the build and reuse buckets,")
    print(f"  so new builds still get the newest version and default variants.")


if __name__ == "__main__":
    main()
